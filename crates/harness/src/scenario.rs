//! Scenario families, the scenario matrix, and the preset sweeps.
//!
//! A [`Scenario`] is a fully deterministic recipe for one circuit model:
//! family + size knob + ports + seed + violation margin.  The sweep engine
//! fans the cross product of scenarios × methods (the *scenario matrix*)
//! across its worker pool.

use crate::method::{Method, LMI_MAX_ORDER};
use ds_circuits::generators::{self, CircuitModel};
use ds_circuits::multiport;
use ds_circuits::random::{
    random_nonpassive_descriptor, random_passive_descriptor, RandomPassiveOptions,
};
use ds_circuits::{mna, CircuitError, Netlist};
use std::sync::Arc;

/// The circuit families the harness can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyKind {
    /// Single-port RC ladder (`size` = sections).
    RcLadder,
    /// Single-port RLC ladder (`size` = sections).
    RlcLadder,
    /// The Table-1 workload: impulsive RLC ladder (`size` = exact order).
    ImpulsiveLadder,
    /// Two-port RC grid (`size` × `size` nodes).
    RcGrid,
    /// Multiport RLC ladder, `ports` chains of `size` sections.
    MultiportLadder,
    /// Multiport RLC ladder with series port inductors (impulsive modes).
    MultiportLadderImpulsive,
    /// Coupled-inductor mesh (`size` × `size`, mutual inductance in `E`).
    CoupledMesh,
    /// Lossy transmission-line π-segment chain (`size` = segments).
    TlineChain,
    /// Near-passivity-boundary model (`size` = dynamic states, `margin`).
    PerturbedBoundary,
    /// Band-limited near-boundary model: the violation sits at a *finite*
    /// witness frequency `ω₀` derived from the seed (`margin`, `ports`;
    /// `size` is unused — the order is `2·ports + 2`).
    BoundaryBand,
    /// A parsed SPICE deck (payload in [`Scenario::deck`]; `size` = stamped
    /// order, `seed` = canonical-deck content hash).
    Deck,
    /// Non-passive ladder with a negative series resistance (`size` = order).
    NonpassiveLadder,
    /// Non-passive model with an indefinite `M₁` (`size` = order).
    NegativeM1,
    /// Randomized passive descriptor (`size` = dynamic states, `seed`).
    RandomPassive,
    /// Randomized non-passive descriptor (`size` = dynamic states, `seed`).
    RandomNonpassive,
    /// Reduce-then-verify RLC ladder (`size` = sections, original order
    /// `2·size + 1`): stamped sparsely and Krylov-projected to a dense model
    /// of order ≤ 48 before verification.  Odd seeds couple disjoint inductor
    /// pairs.
    Reduced,
}

impl FamilyKind {
    /// Every family, in declaration order.
    pub const ALL: [FamilyKind; 16] = [
        FamilyKind::RcLadder,
        FamilyKind::RlcLadder,
        FamilyKind::ImpulsiveLadder,
        FamilyKind::RcGrid,
        FamilyKind::MultiportLadder,
        FamilyKind::MultiportLadderImpulsive,
        FamilyKind::CoupledMesh,
        FamilyKind::TlineChain,
        FamilyKind::PerturbedBoundary,
        FamilyKind::BoundaryBand,
        FamilyKind::Deck,
        FamilyKind::NonpassiveLadder,
        FamilyKind::NegativeM1,
        FamilyKind::RandomPassive,
        FamilyKind::RandomNonpassive,
        FamilyKind::Reduced,
    ];

    /// Parses a stable family identifier back to the family (the inverse of
    /// [`FamilyKind::name`], used when loading persisted artifacts).
    pub fn parse(name: &str) -> Option<FamilyKind> {
        FamilyKind::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// Stable family identifier used in artifacts and golden fixtures.
    pub fn name(self) -> &'static str {
        match self {
            FamilyKind::RcLadder => "rc_ladder",
            FamilyKind::RlcLadder => "rlc_ladder",
            FamilyKind::ImpulsiveLadder => "impulsive_ladder",
            FamilyKind::RcGrid => "rc_grid",
            FamilyKind::MultiportLadder => "multiport_ladder",
            FamilyKind::MultiportLadderImpulsive => "multiport_ladder_impulsive",
            FamilyKind::CoupledMesh => "coupled_mesh",
            FamilyKind::TlineChain => "tline_chain",
            FamilyKind::PerturbedBoundary => "perturbed_boundary",
            FamilyKind::BoundaryBand => "boundary_band",
            FamilyKind::Deck => "deck",
            FamilyKind::NonpassiveLadder => "nonpassive_ladder",
            FamilyKind::NegativeM1 => "negative_m1",
            FamilyKind::RandomPassive => "random_passive",
            FamilyKind::RandomNonpassive => "random_nonpassive",
            FamilyKind::Reduced => "reduced",
        }
    }
}

/// The payload of a [`FamilyKind::Deck`] scenario: a parsed, validated
/// netlist together with the identity the store fingerprints it under.
///
/// The content hash rides in the scenario's `seed` field, so deck records
/// persist and resume through the result store with the standard
/// `family|order|ports|seed|margin|method` fingerprint — no schema change.
#[derive(Debug, Clone, PartialEq)]
pub struct DeckSpec {
    /// Deck name (by convention the `.cir` file stem).
    pub name: String,
    /// The parsed netlist.
    pub netlist: Netlist,
    /// FNV-1a hash of the canonicalized deck text.
    pub hash: u64,
    /// Ground truth: the deck's `.expect` annotation, or
    /// passivity-by-construction when absent.
    pub expected_passive: bool,
}

impl DeckSpec {
    /// Builds the spec from a parsed deck.
    pub fn from_deck(name: impl Into<String>, deck: &ds_netlist::Deck) -> Self {
        DeckSpec {
            name: name.into(),
            netlist: deck.netlist.clone(),
            hash: deck.content_hash(),
            expected_passive: deck.expected_passive(),
        }
    }
}

/// A deterministic recipe for one circuit model.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which generator family to draw from.
    pub family: FamilyKind,
    /// Family-specific size knob (sections / order / grid edge / states).
    pub size: usize,
    /// Number of ports, where the family supports it.
    pub ports: usize,
    /// Seed for the randomized families (ignored by deterministic ones;
    /// carries the canonical content hash for [`FamilyKind::Deck`]).
    pub seed: u64,
    /// Violation margin for the near-boundary families.
    pub margin: f64,
    /// The deck payload — `Some` exactly for [`FamilyKind::Deck`].
    pub deck: Option<Arc<DeckSpec>>,
}

/// Hashable identity of a [`Scenario`]: every field that feeds the generator,
/// with the margin keyed by its exact bit pattern (`f64` is not `Hash`/`Eq`).
/// Two scenarios with equal keys build identical models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioKey {
    /// Generator family.
    pub family: FamilyKind,
    /// Size knob.
    pub size: usize,
    /// Port count.
    pub ports: usize,
    /// Random seed.
    pub seed: u64,
    /// Bit pattern of the violation margin.
    pub margin_bits: u64,
}

impl Scenario {
    /// A scenario with default `ports = 1`, `seed = 0`, `margin = 0`.
    pub fn new(family: FamilyKind, size: usize) -> Self {
        Scenario {
            family,
            size,
            ports: 1,
            seed: 0,
            margin: 0.0,
            deck: None,
        }
    }

    /// A [`FamilyKind::Deck`] scenario for a parsed deck: `size` is the
    /// stamped MNA order, `ports` the deck's port count, and `seed` the
    /// canonical content hash (giving deck tasks stable store fingerprints).
    pub fn from_deck(name: impl Into<String>, deck: &ds_netlist::Deck) -> Self {
        let spec = DeckSpec::from_deck(name, deck);
        Scenario {
            family: FamilyKind::Deck,
            size: spec.netlist.state_dimension(),
            ports: spec.netlist.ports.len(),
            seed: deck_seed(spec.hash),
            margin: 0.0,
            deck: Some(Arc::new(spec)),
        }
    }

    /// Sets the port count.
    #[must_use]
    pub fn with_ports(mut self, ports: usize) -> Self {
        self.ports = ports;
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the violation margin.
    #[must_use]
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// The hashable identity of this scenario (used for fingerprint-keyed
    /// dedup in the sweep engine and the persistent result store).
    pub fn key(&self) -> ScenarioKey {
        ScenarioKey {
            family: self.family,
            size: self.size,
            ports: self.ports,
            seed: self.seed,
            margin_bits: self.margin.to_bits(),
        }
    }

    /// The exact MNA state dimension this scenario will produce, from the
    /// generators' documented order formulas (used to gate the LMI baseline
    /// without building the model).
    pub fn order(&self) -> usize {
        let s = self.size;
        match self.family {
            FamilyKind::RcLadder => s + 1,
            FamilyKind::RlcLadder => 2 * s + 1,
            FamilyKind::ImpulsiveLadder | FamilyKind::NonpassiveLadder => s,
            FamilyKind::NegativeM1 => {
                let o = s.max(6);
                o + (o % 2)
            }
            FamilyKind::RcGrid => s * s,
            FamilyKind::MultiportLadder => self.ports * (2 * s + 1),
            FamilyKind::MultiportLadderImpulsive => self.ports * (2 * s + 3),
            FamilyKind::CoupledMesh => s * s + s * (s - 1),
            FamilyKind::TlineChain => 3 * s + 1,
            FamilyKind::PerturbedBoundary => s + 2,
            FamilyKind::BoundaryBand => 2 * self.ports + 2,
            FamilyKind::Deck => s,
            FamilyKind::RandomPassive => {
                s + 2
                    + if self.seed.is_multiple_of(2) {
                        2 * self.ports
                    } else {
                        0
                    }
            }
            FamilyKind::RandomNonpassive => s + 1,
            FamilyKind::Reduced => 2 * s + 1,
        }
    }

    /// Builds the circuit model.
    ///
    /// # Errors
    ///
    /// Propagates generator failures (unrealizable parameters).
    pub fn build(&self) -> Result<CircuitModel, CircuitError> {
        match self.family {
            FamilyKind::RcLadder => generators::rc_ladder(self.size, 1.0, 1.0),
            FamilyKind::RlcLadder => generators::rlc_ladder(self.size, 1.0, 0.5, 1.0),
            FamilyKind::ImpulsiveLadder => generators::rlc_ladder_with_impulsive(self.size),
            FamilyKind::RcGrid => generators::rc_grid(self.size, self.size),
            FamilyKind::MultiportLadder => {
                multiport::multiport_rlc_ladder(self.ports, self.size, false)
            }
            FamilyKind::MultiportLadderImpulsive => {
                multiport::multiport_rlc_ladder(self.ports, self.size, true)
            }
            FamilyKind::CoupledMesh => multiport::coupled_inductor_mesh(self.size, self.size, 0.4),
            FamilyKind::TlineChain => multiport::lossy_tline_chain(self.size),
            FamilyKind::PerturbedBoundary => {
                multiport::perturbed_boundary_model(self.size, self.ports, self.margin, self.seed)
            }
            FamilyKind::BoundaryBand => multiport::banded_boundary_model(
                self.ports,
                self.margin,
                banded_omega0(self.seed),
                self.seed,
            ),
            FamilyKind::Deck => {
                let spec = self
                    .deck
                    .as_ref()
                    .ok_or_else(|| CircuitError::BadElementValue {
                        details: "deck scenario carries no deck payload".into(),
                    })?;
                let system = mna::stamp(&spec.netlist)?;
                Ok(CircuitModel {
                    name: format!("deck({})", spec.name),
                    system,
                    expected_passive: spec.expected_passive,
                    // Not derived for decks; the field is generator metadata.
                    has_impulsive_modes: false,
                })
            }
            FamilyKind::NonpassiveLadder => generators::nonpassive_ladder(self.size),
            FamilyKind::NegativeM1 => generators::negative_m1_model(self.size),
            FamilyKind::RandomPassive => {
                let options = RandomPassiveOptions {
                    dynamic_states: self.size,
                    nondynamic_states: 2,
                    ports: self.ports,
                    with_impulsive_part: self.seed.is_multiple_of(2),
                    feedthrough: 0.5,
                };
                let system = random_passive_descriptor(&options, self.seed)?;
                Ok(CircuitModel {
                    name: format!(
                        "random_passive(n={},ports={},seed={})",
                        self.size, self.ports, self.seed
                    ),
                    system,
                    expected_passive: true,
                    has_impulsive_modes: options.with_impulsive_part,
                })
            }
            FamilyKind::Reduced => crate::reduce::build_reduced(self).map(|(model, _)| model),
            FamilyKind::RandomNonpassive => {
                let options = RandomPassiveOptions {
                    dynamic_states: self.size,
                    nondynamic_states: 1,
                    ports: self.ports,
                    with_impulsive_part: false,
                    feedthrough: 0.5,
                };
                let system = random_nonpassive_descriptor(&options, self.seed)?;
                Ok(CircuitModel {
                    name: format!(
                        "random_nonpassive(n={},ports={},seed={})",
                        self.size, self.ports, self.seed
                    ),
                    system,
                    expected_passive: false,
                    has_impulsive_modes: false,
                })
            }
        }
    }
}

/// The content hash as it rides in a deck scenario's `seed`: persisted
/// records serialize the seed through the JSON number representation, which
/// is exact only up to 2⁵³, so the 64-bit canonical hash is truncated to its
/// low 53 bits (collisions need ~10⁸ distinct decks; the full hash stays
/// available on [`DeckSpec::hash`]).
pub fn deck_seed(hash: u64) -> u64 {
    hash & ((1u64 << 53) - 1)
}

/// Recursively collects every `*.cir` file under `dir` (sorted by path, so
/// the scenario order — and therefore task ids and artifacts — is
/// deterministic) and parses each into a [`FamilyKind::Deck`] scenario named
/// after its path relative to `dir` (without the extension).
///
/// # Errors
///
/// Reports I/O failures and the first parse failure as
/// `<path>: line L, column C: message`.
pub fn deck_scenarios_from_dir(dir: &std::path::Path) -> Result<Vec<Scenario>, String> {
    fn walk(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path
                .extension()
                .is_some_and(|ext| ext.eq_ignore_ascii_case("cir"))
            {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut paths = Vec::new();
    walk(dir, &mut paths)?;
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .cir decks found under {}", dir.display()));
    }
    let mut scenarios = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let deck = ds_netlist::parse_deck(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .strip_prefix(dir)
            .unwrap_or(&path)
            .with_extension("")
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        scenarios.push(Scenario::from_deck(name, &deck));
    }
    Ok(scenarios)
}

/// The witness frequency a [`FamilyKind::BoundaryBand`] scenario derives from
/// its seed: `ω₀ = 1 + 0.5·(seed mod 5)`, so replicated seeds spread the
/// violation band across the frequency axis while staying inside the
/// violation-sampling grid.
pub fn banded_omega0(seed: u64) -> f64 {
    1.0 + 0.5 * (seed % 5) as f64
}

/// One unit of work for the sweep engine: a scenario paired with a method.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTask {
    /// The model recipe.
    pub scenario: Scenario,
    /// The passivity test to run on it.
    pub method: Method,
}

/// Builds the scenario matrix: the cross product of scenarios × methods, with
/// the LMI baseline gated to orders ≤ [`LMI_MAX_ORDER`] (the paper's "NIL"
/// regime is skipped rather than timed out).
pub fn scenario_matrix(scenarios: &[Scenario], methods: &[Method]) -> Vec<SweepTask> {
    let mut tasks = Vec::with_capacity(scenarios.len() * methods.len());
    for scenario in scenarios {
        for &method in methods {
            if method == Method::Lmi && scenario.order() > LMI_MAX_ORDER {
                continue;
            }
            tasks.push(SweepTask {
                scenario: scenario.clone(),
                method,
            });
        }
    }
    tasks
}

/// Tiny preset used by the CI smoke job and the determinism test: every
/// family appears once at its smallest interesting size.
pub fn quick_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(FamilyKind::RcLadder, 4),
        Scenario::new(FamilyKind::RlcLadder, 3),
        Scenario::new(FamilyKind::ImpulsiveLadder, 8),
        Scenario::new(FamilyKind::RcGrid, 3),
        Scenario::new(FamilyKind::MultiportLadder, 2).with_ports(2),
        Scenario::new(FamilyKind::MultiportLadderImpulsive, 2).with_ports(2),
        Scenario::new(FamilyKind::CoupledMesh, 3),
        Scenario::new(FamilyKind::TlineChain, 3),
        Scenario::new(FamilyKind::PerturbedBoundary, 5).with_seed(1),
        Scenario::new(FamilyKind::PerturbedBoundary, 5)
            .with_ports(2)
            .with_margin(0.25)
            .with_seed(1),
        Scenario::new(FamilyKind::BoundaryBand, 0)
            .with_ports(2)
            .with_seed(2),
        Scenario::new(FamilyKind::BoundaryBand, 0)
            .with_margin(0.4)
            .with_seed(2),
        Scenario::new(FamilyKind::NonpassiveLadder, 8),
        Scenario::new(FamilyKind::NegativeM1, 8),
        Scenario::new(FamilyKind::RandomPassive, 5).with_seed(2),
        Scenario::new(FamilyKind::RandomNonpassive, 5).with_seed(0),
        Scenario::new(FamilyKind::Reduced, 30),
    ]
}

/// The standard sweep: a medium-scale scenario ensemble covering every family
/// at several sizes, port counts, margins and seeds.  `seeds` controls the
/// replication of the randomized families.
pub fn standard_scenarios(seeds: u64) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for &size in &[4usize, 8, 16] {
        scenarios.push(Scenario::new(FamilyKind::RcLadder, size));
    }
    for &size in &[3usize, 6, 10] {
        scenarios.push(Scenario::new(FamilyKind::RlcLadder, size));
    }
    for &order in &[10usize, 20, 40] {
        scenarios.push(Scenario::new(FamilyKind::ImpulsiveLadder, order));
    }
    for &edge in &[3usize, 4] {
        scenarios.push(Scenario::new(FamilyKind::RcGrid, edge));
    }
    for &ports in &[2usize, 3] {
        for &sections in &[2usize, 4] {
            scenarios.push(Scenario::new(FamilyKind::MultiportLadder, sections).with_ports(ports));
            scenarios.push(
                Scenario::new(FamilyKind::MultiportLadderImpulsive, sections).with_ports(ports),
            );
        }
    }
    for &edge in &[3usize, 4] {
        scenarios.push(Scenario::new(FamilyKind::CoupledMesh, edge));
    }
    for &segments in &[3usize, 6] {
        scenarios.push(Scenario::new(FamilyKind::TlineChain, segments));
    }
    for seed in 0..seeds {
        for &margin in &[0.0, 0.1, 0.5] {
            scenarios.push(
                Scenario::new(FamilyKind::PerturbedBoundary, 6)
                    .with_ports(1 + (seed as usize) % 3)
                    .with_margin(margin)
                    .with_seed(seed),
            );
        }
        for &margin in &[0.0, 0.25] {
            scenarios.push(
                Scenario::new(FamilyKind::BoundaryBand, 0)
                    .with_ports(1 + (seed as usize) % 2)
                    .with_margin(margin)
                    .with_seed(seed),
            );
        }
        scenarios.push(Scenario::new(FamilyKind::RandomPassive, 6).with_seed(seed));
        scenarios.push(Scenario::new(FamilyKind::RandomNonpassive, 6).with_seed(seed));
    }
    for &order in &[8usize, 14] {
        scenarios.push(Scenario::new(FamilyKind::NonpassiveLadder, order));
        scenarios.push(Scenario::new(FamilyKind::NegativeM1, order));
    }
    for &sections in &[30usize, 60] {
        scenarios.push(Scenario::new(FamilyKind::Reduced, sections));
        scenarios.push(Scenario::new(FamilyKind::Reduced, sections).with_seed(1));
    }
    scenarios
}

/// Builds a standard-preset task list of at least `target` tasks by growing
/// the randomized-seed replication until the matrix is large enough (used by
/// the throughput/speedup benchmark, e.g. a 200-task sweep).
pub fn standard_tasks(target: usize) -> Vec<SweepTask> {
    let methods = [Method::Proposed, Method::Weierstrass, Method::Lmi];
    let mut seeds = 2u64;
    loop {
        let tasks = scenario_matrix(&standard_scenarios(seeds), &methods);
        if tasks.len() >= target || seeds > 4096 {
            return tasks;
        }
        seeds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_formulas_match_built_models() {
        let scenarios = vec![
            Scenario::new(FamilyKind::RcLadder, 5),
            Scenario::new(FamilyKind::RlcLadder, 4),
            Scenario::new(FamilyKind::ImpulsiveLadder, 10),
            Scenario::new(FamilyKind::RcGrid, 3),
            Scenario::new(FamilyKind::MultiportLadder, 3).with_ports(2),
            Scenario::new(FamilyKind::MultiportLadderImpulsive, 2).with_ports(3),
            Scenario::new(FamilyKind::CoupledMesh, 3),
            Scenario::new(FamilyKind::TlineChain, 4),
            Scenario::new(FamilyKind::PerturbedBoundary, 5).with_ports(2),
            Scenario::new(FamilyKind::BoundaryBand, 0)
                .with_ports(2)
                .with_seed(3),
            Scenario::new(FamilyKind::BoundaryBand, 0).with_margin(0.25),
            Scenario::new(FamilyKind::NonpassiveLadder, 8),
            Scenario::new(FamilyKind::NegativeM1, 8),
            Scenario::new(FamilyKind::RandomPassive, 5).with_seed(2),
            Scenario::new(FamilyKind::RandomPassive, 5).with_seed(1),
            Scenario::new(FamilyKind::RandomNonpassive, 5),
            Scenario::new(FamilyKind::Reduced, 8),
        ];
        for scenario in scenarios {
            let model = scenario.build().unwrap();
            assert_eq!(
                model.system.order(),
                scenario.order(),
                "order formula wrong for {:?}",
                scenario
            );
        }
    }

    #[test]
    fn matrix_gates_lmi_by_order() {
        let scenarios = vec![
            Scenario::new(FamilyKind::ImpulsiveLadder, 20),
            Scenario::new(FamilyKind::ImpulsiveLadder, 100),
        ];
        let tasks = scenario_matrix(&scenarios, &Method::ALL);
        // 2 scenarios × {proposed, weierstrass} + LMI only for order 20.
        assert_eq!(tasks.len(), 5);
        assert!(!tasks
            .iter()
            .any(|t| t.method == Method::Lmi && t.scenario.order() > LMI_MAX_ORDER));
    }

    #[test]
    fn deck_scenarios_carry_their_payload_and_hash() {
        let deck = ds_netlist::parse_deck(
            "L1 a b 1\nL2 c 0 2\nK1 L1 L2 0.6\nR1 b 0 1\nR2 c 0 1\n.port a\n.end\n",
        )
        .unwrap();
        let scenario = Scenario::from_deck("pair", &deck);
        assert_eq!(scenario.family, FamilyKind::Deck);
        assert_eq!(scenario.ports, 1);
        assert_eq!(scenario.size, deck.netlist.state_dimension());
        assert_eq!(scenario.seed, deck_seed(deck.content_hash()));
        // The seed survives an f64 round-trip (the JSONL number path).
        assert_eq!(scenario.seed as f64 as u64, scenario.seed);
        let model = scenario.build().unwrap();
        assert_eq!(model.name, "deck(pair)");
        assert_eq!(model.system.order(), scenario.order());
        assert!(model.expected_passive);
        // A deck scenario without its payload is a build error, not a panic.
        let mut stripped = scenario.clone();
        stripped.deck = None;
        assert!(stripped.build().is_err());
        // Renaming nodes leaves the fingerprint identity unchanged.
        let renamed = ds_netlist::parse_deck(
            "L1 x y 1\nL2 z 0 2\nK1 L1 L2 0.6\nR1 y 0 1\nR2 z 0 1\n.port x\n.end\n",
        )
        .unwrap();
        assert_eq!(Scenario::from_deck("pair", &renamed).key(), scenario.key());
    }

    #[test]
    fn presets_are_nonempty_and_buildable() {
        for scenario in quick_scenarios() {
            scenario
                .build()
                .unwrap_or_else(|e| panic!("quick scenario {scenario:?} failed to build: {e}"));
        }
        assert!(standard_scenarios(2).len() >= 30);
        let tasks = standard_tasks(200);
        assert!(tasks.len() >= 200, "only {} tasks", tasks.len());
    }
}
