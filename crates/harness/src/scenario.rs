//! Scenario families, the scenario matrix, and the preset sweeps.
//!
//! A [`Scenario`] is a fully deterministic recipe for one circuit model:
//! family + size knob + ports + seed + violation margin.  The sweep engine
//! fans the cross product of scenarios × methods (the *scenario matrix*)
//! across its worker pool.

use crate::method::{Method, LMI_MAX_ORDER};
use ds_circuits::generators::{self, CircuitModel};
use ds_circuits::multiport;
use ds_circuits::random::{
    random_nonpassive_descriptor, random_passive_descriptor, RandomPassiveOptions,
};
use ds_circuits::CircuitError;

/// The circuit families the harness can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyKind {
    /// Single-port RC ladder (`size` = sections).
    RcLadder,
    /// Single-port RLC ladder (`size` = sections).
    RlcLadder,
    /// The Table-1 workload: impulsive RLC ladder (`size` = exact order).
    ImpulsiveLadder,
    /// Two-port RC grid (`size` × `size` nodes).
    RcGrid,
    /// Multiport RLC ladder, `ports` chains of `size` sections.
    MultiportLadder,
    /// Multiport RLC ladder with series port inductors (impulsive modes).
    MultiportLadderImpulsive,
    /// Coupled-inductor mesh (`size` × `size`, mutual inductance in `E`).
    CoupledMesh,
    /// Lossy transmission-line π-segment chain (`size` = segments).
    TlineChain,
    /// Near-passivity-boundary model (`size` = dynamic states, `margin`).
    PerturbedBoundary,
    /// Non-passive ladder with a negative series resistance (`size` = order).
    NonpassiveLadder,
    /// Non-passive model with an indefinite `M₁` (`size` = order).
    NegativeM1,
    /// Randomized passive descriptor (`size` = dynamic states, `seed`).
    RandomPassive,
    /// Randomized non-passive descriptor (`size` = dynamic states, `seed`).
    RandomNonpassive,
}

impl FamilyKind {
    /// Every family, in declaration order.
    pub const ALL: [FamilyKind; 13] = [
        FamilyKind::RcLadder,
        FamilyKind::RlcLadder,
        FamilyKind::ImpulsiveLadder,
        FamilyKind::RcGrid,
        FamilyKind::MultiportLadder,
        FamilyKind::MultiportLadderImpulsive,
        FamilyKind::CoupledMesh,
        FamilyKind::TlineChain,
        FamilyKind::PerturbedBoundary,
        FamilyKind::NonpassiveLadder,
        FamilyKind::NegativeM1,
        FamilyKind::RandomPassive,
        FamilyKind::RandomNonpassive,
    ];

    /// Parses a stable family identifier back to the family (the inverse of
    /// [`FamilyKind::name`], used when loading persisted artifacts).
    pub fn parse(name: &str) -> Option<FamilyKind> {
        FamilyKind::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// Stable family identifier used in artifacts and golden fixtures.
    pub fn name(self) -> &'static str {
        match self {
            FamilyKind::RcLadder => "rc_ladder",
            FamilyKind::RlcLadder => "rlc_ladder",
            FamilyKind::ImpulsiveLadder => "impulsive_ladder",
            FamilyKind::RcGrid => "rc_grid",
            FamilyKind::MultiportLadder => "multiport_ladder",
            FamilyKind::MultiportLadderImpulsive => "multiport_ladder_impulsive",
            FamilyKind::CoupledMesh => "coupled_mesh",
            FamilyKind::TlineChain => "tline_chain",
            FamilyKind::PerturbedBoundary => "perturbed_boundary",
            FamilyKind::NonpassiveLadder => "nonpassive_ladder",
            FamilyKind::NegativeM1 => "negative_m1",
            FamilyKind::RandomPassive => "random_passive",
            FamilyKind::RandomNonpassive => "random_nonpassive",
        }
    }
}

/// A deterministic recipe for one circuit model.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which generator family to draw from.
    pub family: FamilyKind,
    /// Family-specific size knob (sections / order / grid edge / states).
    pub size: usize,
    /// Number of ports, where the family supports it.
    pub ports: usize,
    /// Seed for the randomized families (ignored by deterministic ones).
    pub seed: u64,
    /// Violation margin for [`FamilyKind::PerturbedBoundary`].
    pub margin: f64,
}

/// Hashable identity of a [`Scenario`]: every field that feeds the generator,
/// with the margin keyed by its exact bit pattern (`f64` is not `Hash`/`Eq`).
/// Two scenarios with equal keys build identical models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioKey {
    /// Generator family.
    pub family: FamilyKind,
    /// Size knob.
    pub size: usize,
    /// Port count.
    pub ports: usize,
    /// Random seed.
    pub seed: u64,
    /// Bit pattern of the violation margin.
    pub margin_bits: u64,
}

impl Scenario {
    /// A scenario with default `ports = 1`, `seed = 0`, `margin = 0`.
    pub fn new(family: FamilyKind, size: usize) -> Self {
        Scenario {
            family,
            size,
            ports: 1,
            seed: 0,
            margin: 0.0,
        }
    }

    /// Sets the port count.
    #[must_use]
    pub fn with_ports(mut self, ports: usize) -> Self {
        self.ports = ports;
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the violation margin.
    #[must_use]
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// The hashable identity of this scenario (used for fingerprint-keyed
    /// dedup in the sweep engine and the persistent result store).
    pub fn key(&self) -> ScenarioKey {
        ScenarioKey {
            family: self.family,
            size: self.size,
            ports: self.ports,
            seed: self.seed,
            margin_bits: self.margin.to_bits(),
        }
    }

    /// The exact MNA state dimension this scenario will produce, from the
    /// generators' documented order formulas (used to gate the LMI baseline
    /// without building the model).
    pub fn order(&self) -> usize {
        let s = self.size;
        match self.family {
            FamilyKind::RcLadder => s + 1,
            FamilyKind::RlcLadder => 2 * s + 1,
            FamilyKind::ImpulsiveLadder | FamilyKind::NonpassiveLadder => s,
            FamilyKind::NegativeM1 => {
                let o = s.max(6);
                o + (o % 2)
            }
            FamilyKind::RcGrid => s * s,
            FamilyKind::MultiportLadder => self.ports * (2 * s + 1),
            FamilyKind::MultiportLadderImpulsive => self.ports * (2 * s + 3),
            FamilyKind::CoupledMesh => s * s + s * (s - 1),
            FamilyKind::TlineChain => 3 * s + 1,
            FamilyKind::PerturbedBoundary => s + 2,
            FamilyKind::RandomPassive => {
                s + 2
                    + if self.seed.is_multiple_of(2) {
                        2 * self.ports
                    } else {
                        0
                    }
            }
            FamilyKind::RandomNonpassive => s + 1,
        }
    }

    /// Builds the circuit model.
    ///
    /// # Errors
    ///
    /// Propagates generator failures (unrealizable parameters).
    pub fn build(&self) -> Result<CircuitModel, CircuitError> {
        match self.family {
            FamilyKind::RcLadder => generators::rc_ladder(self.size, 1.0, 1.0),
            FamilyKind::RlcLadder => generators::rlc_ladder(self.size, 1.0, 0.5, 1.0),
            FamilyKind::ImpulsiveLadder => generators::rlc_ladder_with_impulsive(self.size),
            FamilyKind::RcGrid => generators::rc_grid(self.size, self.size),
            FamilyKind::MultiportLadder => {
                multiport::multiport_rlc_ladder(self.ports, self.size, false)
            }
            FamilyKind::MultiportLadderImpulsive => {
                multiport::multiport_rlc_ladder(self.ports, self.size, true)
            }
            FamilyKind::CoupledMesh => multiport::coupled_inductor_mesh(self.size, self.size, 0.4),
            FamilyKind::TlineChain => multiport::lossy_tline_chain(self.size),
            FamilyKind::PerturbedBoundary => {
                multiport::perturbed_boundary_model(self.size, self.ports, self.margin, self.seed)
            }
            FamilyKind::NonpassiveLadder => generators::nonpassive_ladder(self.size),
            FamilyKind::NegativeM1 => generators::negative_m1_model(self.size),
            FamilyKind::RandomPassive => {
                let options = RandomPassiveOptions {
                    dynamic_states: self.size,
                    nondynamic_states: 2,
                    ports: self.ports,
                    with_impulsive_part: self.seed.is_multiple_of(2),
                    feedthrough: 0.5,
                };
                let system = random_passive_descriptor(&options, self.seed)?;
                Ok(CircuitModel {
                    name: format!(
                        "random_passive(n={},ports={},seed={})",
                        self.size, self.ports, self.seed
                    ),
                    system,
                    expected_passive: true,
                    has_impulsive_modes: options.with_impulsive_part,
                })
            }
            FamilyKind::RandomNonpassive => {
                let options = RandomPassiveOptions {
                    dynamic_states: self.size,
                    nondynamic_states: 1,
                    ports: self.ports,
                    with_impulsive_part: false,
                    feedthrough: 0.5,
                };
                let system = random_nonpassive_descriptor(&options, self.seed)?;
                Ok(CircuitModel {
                    name: format!(
                        "random_nonpassive(n={},ports={},seed={})",
                        self.size, self.ports, self.seed
                    ),
                    system,
                    expected_passive: false,
                    has_impulsive_modes: false,
                })
            }
        }
    }
}

/// One unit of work for the sweep engine: a scenario paired with a method.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTask {
    /// The model recipe.
    pub scenario: Scenario,
    /// The passivity test to run on it.
    pub method: Method,
}

/// Builds the scenario matrix: the cross product of scenarios × methods, with
/// the LMI baseline gated to orders ≤ [`LMI_MAX_ORDER`] (the paper's "NIL"
/// regime is skipped rather than timed out).
pub fn scenario_matrix(scenarios: &[Scenario], methods: &[Method]) -> Vec<SweepTask> {
    let mut tasks = Vec::with_capacity(scenarios.len() * methods.len());
    for scenario in scenarios {
        for &method in methods {
            if method == Method::Lmi && scenario.order() > LMI_MAX_ORDER {
                continue;
            }
            tasks.push(SweepTask {
                scenario: scenario.clone(),
                method,
            });
        }
    }
    tasks
}

/// Tiny preset used by the CI smoke job and the determinism test: every
/// family appears once at its smallest interesting size.
pub fn quick_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(FamilyKind::RcLadder, 4),
        Scenario::new(FamilyKind::RlcLadder, 3),
        Scenario::new(FamilyKind::ImpulsiveLadder, 8),
        Scenario::new(FamilyKind::RcGrid, 3),
        Scenario::new(FamilyKind::MultiportLadder, 2).with_ports(2),
        Scenario::new(FamilyKind::MultiportLadderImpulsive, 2).with_ports(2),
        Scenario::new(FamilyKind::CoupledMesh, 3),
        Scenario::new(FamilyKind::TlineChain, 3),
        Scenario::new(FamilyKind::PerturbedBoundary, 5).with_seed(1),
        Scenario::new(FamilyKind::PerturbedBoundary, 5)
            .with_ports(2)
            .with_margin(0.25)
            .with_seed(1),
        Scenario::new(FamilyKind::NonpassiveLadder, 8),
        Scenario::new(FamilyKind::NegativeM1, 8),
        Scenario::new(FamilyKind::RandomPassive, 5).with_seed(2),
        Scenario::new(FamilyKind::RandomNonpassive, 5).with_seed(0),
    ]
}

/// The standard sweep: a medium-scale scenario ensemble covering every family
/// at several sizes, port counts, margins and seeds.  `seeds` controls the
/// replication of the randomized families.
pub fn standard_scenarios(seeds: u64) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for &size in &[4usize, 8, 16] {
        scenarios.push(Scenario::new(FamilyKind::RcLadder, size));
    }
    for &size in &[3usize, 6, 10] {
        scenarios.push(Scenario::new(FamilyKind::RlcLadder, size));
    }
    for &order in &[10usize, 20, 40] {
        scenarios.push(Scenario::new(FamilyKind::ImpulsiveLadder, order));
    }
    for &edge in &[3usize, 4] {
        scenarios.push(Scenario::new(FamilyKind::RcGrid, edge));
    }
    for &ports in &[2usize, 3] {
        for &sections in &[2usize, 4] {
            scenarios.push(Scenario::new(FamilyKind::MultiportLadder, sections).with_ports(ports));
            scenarios.push(
                Scenario::new(FamilyKind::MultiportLadderImpulsive, sections).with_ports(ports),
            );
        }
    }
    for &edge in &[3usize, 4] {
        scenarios.push(Scenario::new(FamilyKind::CoupledMesh, edge));
    }
    for &segments in &[3usize, 6] {
        scenarios.push(Scenario::new(FamilyKind::TlineChain, segments));
    }
    for seed in 0..seeds {
        for &margin in &[0.0, 0.1, 0.5] {
            scenarios.push(
                Scenario::new(FamilyKind::PerturbedBoundary, 6)
                    .with_ports(1 + (seed as usize) % 3)
                    .with_margin(margin)
                    .with_seed(seed),
            );
        }
        scenarios.push(Scenario::new(FamilyKind::RandomPassive, 6).with_seed(seed));
        scenarios.push(Scenario::new(FamilyKind::RandomNonpassive, 6).with_seed(seed));
    }
    for &order in &[8usize, 14] {
        scenarios.push(Scenario::new(FamilyKind::NonpassiveLadder, order));
        scenarios.push(Scenario::new(FamilyKind::NegativeM1, order));
    }
    scenarios
}

/// Builds a standard-preset task list of at least `target` tasks by growing
/// the randomized-seed replication until the matrix is large enough (used by
/// the throughput/speedup benchmark, e.g. a 200-task sweep).
pub fn standard_tasks(target: usize) -> Vec<SweepTask> {
    let methods = [Method::Proposed, Method::Weierstrass, Method::Lmi];
    let mut seeds = 2u64;
    loop {
        let tasks = scenario_matrix(&standard_scenarios(seeds), &methods);
        if tasks.len() >= target || seeds > 4096 {
            return tasks;
        }
        seeds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_formulas_match_built_models() {
        let scenarios = vec![
            Scenario::new(FamilyKind::RcLadder, 5),
            Scenario::new(FamilyKind::RlcLadder, 4),
            Scenario::new(FamilyKind::ImpulsiveLadder, 10),
            Scenario::new(FamilyKind::RcGrid, 3),
            Scenario::new(FamilyKind::MultiportLadder, 3).with_ports(2),
            Scenario::new(FamilyKind::MultiportLadderImpulsive, 2).with_ports(3),
            Scenario::new(FamilyKind::CoupledMesh, 3),
            Scenario::new(FamilyKind::TlineChain, 4),
            Scenario::new(FamilyKind::PerturbedBoundary, 5).with_ports(2),
            Scenario::new(FamilyKind::NonpassiveLadder, 8),
            Scenario::new(FamilyKind::NegativeM1, 8),
            Scenario::new(FamilyKind::RandomPassive, 5).with_seed(2),
            Scenario::new(FamilyKind::RandomPassive, 5).with_seed(1),
            Scenario::new(FamilyKind::RandomNonpassive, 5),
        ];
        for scenario in scenarios {
            let model = scenario.build().unwrap();
            assert_eq!(
                model.system.order(),
                scenario.order(),
                "order formula wrong for {:?}",
                scenario
            );
        }
    }

    #[test]
    fn matrix_gates_lmi_by_order() {
        let scenarios = vec![
            Scenario::new(FamilyKind::ImpulsiveLadder, 20),
            Scenario::new(FamilyKind::ImpulsiveLadder, 100),
        ];
        let tasks = scenario_matrix(&scenarios, &Method::ALL);
        // 2 scenarios × {proposed, weierstrass} + LMI only for order 20.
        assert_eq!(tasks.len(), 5);
        assert!(!tasks
            .iter()
            .any(|t| t.method == Method::Lmi && t.scenario.order() > LMI_MAX_ORDER));
    }

    #[test]
    fn presets_are_nonempty_and_buildable() {
        for scenario in quick_scenarios() {
            scenario
                .build()
                .unwrap_or_else(|e| panic!("quick scenario {scenario:?} failed to build: {e}"));
        }
        assert!(standard_scenarios(2).len() >= 30);
        let tasks = standard_tasks(200);
        assert!(tasks.len() >= 200, "only {} tasks", tasks.len());
    }
}
