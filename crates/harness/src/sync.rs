//! Poison-tolerant locking helpers.
//!
//! `Mutex::lock().unwrap()` turns one panicked holder into a permanent
//! denial of service: the mutex is poisoned and every later `lock()` returns
//! `Err`, so the daemon's request path panics forever after a single worker
//! crash.  None of the workspace's guarded state relies on cross-field
//! invariants that a mid-update panic could torn-write (queues, caches and
//! counters are each updated through single `&mut` calls), so recovering the
//! guard is always sound here.  The `lock-discipline` rule of `ds-lint`
//! enforces that every lock goes through these helpers.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard when a previous holder panicked.
pub fn lock_infallible<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard from poisoning, so a
/// panicked producer cannot wedge consumers parked on the condition.
pub fn wait_timeout_infallible<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_infallible_recovers_from_poison() {
        let mutex = Mutex::new(7u32);
        // Poison it: panic while holding the guard.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("poison the mutex");
        }));
        assert!(result.is_err());
        assert!(mutex.is_poisoned());
        // A plain lock().unwrap() would now panic; the helper recovers.
        let mut guard = lock_infallible(&mutex);
        *guard += 1;
        assert_eq!(*guard, 8);
    }

    #[test]
    fn wait_timeout_infallible_times_out_normally() {
        let mutex = Mutex::new(());
        let condvar = Condvar::new();
        let guard = lock_infallible(&mutex);
        let (_guard, result) = wait_timeout_infallible(&condvar, guard, Duration::from_millis(1));
        assert!(result.timed_out());
    }
}
