//! The golden-verdict conformance sweep.
//!
//! [`golden_tasks`] defines a fixed (family, order) matrix; its verdicts and
//! violation-frequency counts are pinned in `tests/golden/verdicts.json` at
//! the workspace root.  [`render_golden`] is the canonical serialization used
//! both by the `regen-golden` binary (to write the fixture) and by the
//! conformance test (to compare against it) — byte-for-byte.

use crate::json;
use crate::method::Method;
use crate::scenario::{scenario_matrix, FamilyKind, Scenario, SweepTask};
use crate::sweep::SweepRecord;

/// Fixture schema version; bump when the record layout changes.
pub const GOLDEN_VERSION: u32 = 1;

/// Orders up to which the LMI baseline participates in the golden sweep (it
/// is the expensive method; the conformance suite keeps it to tiny models).
pub const GOLDEN_LMI_MAX_ORDER: usize = 13;

/// The committed example decks pinned by the golden fixture (embedded at
/// compile time, so fixture and corpus cannot drift apart silently).
pub fn golden_deck_scenarios() -> Vec<Scenario> {
    let decks: [(&str, &str); 2] = [
        (
            "coupled_pair",
            include_str!("../../../examples/decks/coupled_pair.cir"),
        ),
        (
            "nonpassive_ladder",
            include_str!("../../../examples/decks/nonpassive_ladder.cir"),
        ),
    ];
    decks
        .into_iter()
        .map(|(name, text)| {
            let deck = ds_netlist::parse_deck(text)
                .unwrap_or_else(|e| panic!("committed deck {name} does not parse: {e}"));
            Scenario::from_deck(name, &deck)
        })
        .collect()
}

/// The scenarios pinned by the golden fixture: every family at small orders.
pub fn golden_scenarios() -> Vec<Scenario> {
    let mut scenarios = vec![
        Scenario::new(FamilyKind::RcLadder, 4),
        Scenario::new(FamilyKind::RcLadder, 8),
        Scenario::new(FamilyKind::RlcLadder, 3),
        Scenario::new(FamilyKind::ImpulsiveLadder, 8),
        Scenario::new(FamilyKind::ImpulsiveLadder, 12),
        Scenario::new(FamilyKind::RcGrid, 3),
        Scenario::new(FamilyKind::MultiportLadder, 2).with_ports(2),
        Scenario::new(FamilyKind::MultiportLadder, 2).with_ports(3),
        Scenario::new(FamilyKind::MultiportLadderImpulsive, 2).with_ports(2),
        Scenario::new(FamilyKind::CoupledMesh, 3),
        Scenario::new(FamilyKind::TlineChain, 3),
        Scenario::new(FamilyKind::PerturbedBoundary, 5).with_seed(1),
        Scenario::new(FamilyKind::PerturbedBoundary, 5)
            .with_ports(2)
            .with_margin(0.25)
            .with_seed(1),
        Scenario::new(FamilyKind::PerturbedBoundary, 6)
            .with_margin(0.5)
            .with_seed(2),
        Scenario::new(FamilyKind::BoundaryBand, 0)
            .with_ports(2)
            .with_seed(1),
        Scenario::new(FamilyKind::BoundaryBand, 0)
            .with_margin(0.5)
            .with_seed(2),
        Scenario::new(FamilyKind::NonpassiveLadder, 8),
        Scenario::new(FamilyKind::NegativeM1, 8),
        Scenario::new(FamilyKind::RandomPassive, 5),
        Scenario::new(FamilyKind::RandomPassive, 6)
            .with_ports(2)
            .with_seed(1),
        Scenario::new(FamilyKind::RandomNonpassive, 5),
    ];
    scenarios.extend(golden_deck_scenarios());
    scenarios
}

/// Whether a golden scenario participates in the LMI column.  Besides the
/// order gate, the expected-nonpassive cells are kept out (certifying
/// infeasibility makes the first-order solver exhaust its whole iteration
/// budget — several seconds per cell in debug builds, which would dominate
/// the conformance suite) except for one pinned rejection cell; the LMI
/// reject path is additionally covered by `tests/method_agreement.rs`.
fn lmi_in_golden(scenario: &Scenario) -> bool {
    if scenario.order() > GOLDEN_LMI_MAX_ORDER {
        return false;
    }
    match scenario.family {
        FamilyKind::NonpassiveLadder | FamilyKind::NegativeM1 => false,
        FamilyKind::PerturbedBoundary | FamilyKind::BoundaryBand => scenario.margin == 0.0,
        // Same policy for decks: only expected-passive ones join the LMI
        // column (the infeasibility certificate is the slow path).
        FamilyKind::Deck => scenario
            .deck
            .as_ref()
            .is_some_and(|deck| deck.expected_passive),
        _ => true,
    }
}

/// The golden task matrix: proposed + Weierstrass on every scenario, LMI on
/// the small-order subset selected by [`lmi_in_golden`].
pub fn golden_tasks() -> Vec<SweepTask> {
    let scenarios = golden_scenarios();
    let mut tasks = scenario_matrix(&scenarios, &[Method::Proposed, Method::Weierstrass]);
    let lmi_scenarios: Vec<Scenario> = scenarios.into_iter().filter(lmi_in_golden).collect();
    tasks.extend(scenario_matrix(&lmi_scenarios, &[Method::Lmi]));
    tasks
}

/// Canonical fixture serialization: a pretty-printed JSON document with one
/// cell per golden task, in task order.
pub fn render_golden(records: &[SweepRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {GOLDEN_VERSION},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, record) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "    {{\"family\": {}, \"scenario\": {}, \"order\": {}, \"ports\": {}, ",
                "\"seed\": {}, \"margin\": {}, \"method\": {}, \"passive\": {}, ",
                "\"strict\": {}, \"reason\": {}, \"violation_count\": {}}}{}\n"
            ),
            json::quote(record.family),
            json::quote(&record.scenario),
            record.order,
            record.ports,
            record.seed,
            json::number(record.margin),
            json::quote(record.method),
            json::opt_bool(record.passive),
            record.strict,
            json::quote(&record.reason),
            json::opt_usize(record.violation_count),
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_matrix_is_stable_and_small() {
        let tasks = golden_tasks();
        // 23 scenarios × 2 methods + the small-order LMI subset.
        assert!(tasks.len() >= 46, "golden matrix shrank: {}", tasks.len());
        assert!(tasks.len() <= 72, "golden matrix grew: {}", tasks.len());
        assert!(tasks
            .iter()
            .filter(|t| t.method == Method::Lmi)
            .all(|t| t.scenario.order() <= GOLDEN_LMI_MAX_ORDER));
        // Every family is represented.
        for family in [
            "rc_ladder",
            "multiport_ladder",
            "coupled_mesh",
            "tline_chain",
            "perturbed_boundary",
            "boundary_band",
            "deck",
            "random_nonpassive",
        ] {
            assert!(
                tasks.iter().any(|t| t.scenario.family.name() == family),
                "family {family} missing from the golden matrix"
            );
        }
    }

    #[test]
    fn rendered_fixture_is_valid_json() {
        let result = crate::sweep::run_sweep(&crate::sweep::SweepSpec::new(
            scenario_matrix(
                &[Scenario::new(FamilyKind::RcLadder, 3)],
                &[Method::Proposed],
            ),
            1,
        ));
        let text = render_golden(&result.records);
        let value = crate::json::parse(&text).unwrap();
        assert_eq!(value.get("version").unwrap().as_f64(), Some(1.0));
        assert_eq!(value.get("cells").unwrap().as_array().unwrap().len(), 1);
    }
}
