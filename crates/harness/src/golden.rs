//! The golden-verdict conformance sweep.
//!
//! [`golden_tasks`] defines a fixed (family, order) matrix; its verdicts and
//! violation-frequency counts are pinned in `tests/golden/verdicts.json` at
//! the workspace root.  [`render_golden`] is the canonical serialization used
//! both by the `regen-golden` binary (to write the fixture) and by the
//! conformance test (to compare against it) — byte-for-byte.
//!
//! The suite runs in two modes.  **Strict** mode compares the rendered
//! document byte-for-byte, pinning the exact serialization.  **Semantic**
//! mode ([`semantic_diff`]) compares cell-by-cell: every discrete field
//! (verdict, strictness, reason slug, violation count, scenario identity)
//! must match exactly, while the witness frequency — a floating-point
//! by-product of an iterative eigensolve — only has to agree within
//! [`SEMANTIC_REL_TOL`].  Semantic mode is what lets a numerically
//! equivalent kernel change (e.g. a blocked Householder reduction) prove it
//! preserved every verdict without demanding bit-identical arithmetic.

use crate::json;
use crate::method::Method;
use crate::scenario::{scenario_matrix, FamilyKind, Scenario, SweepTask};
use crate::sweep::SweepRecord;

/// Fixture schema version; bump when the record layout changes.
/// v2 added the approximate `witness` field to rejection cells.
pub const GOLDEN_VERSION: u32 = 2;

/// Relative tolerance on the witness frequency in [`semantic_diff`]: wide
/// enough to absorb roundoff reordering in the eigensolve, narrow enough
/// that a witness on a different violation band still fails the suite.
pub const SEMANTIC_REL_TOL: f64 = 1e-6;

/// Orders up to which the LMI baseline participates in the golden sweep (it
/// is the expensive method; the conformance suite keeps it to tiny models).
pub const GOLDEN_LMI_MAX_ORDER: usize = 13;

/// The committed example decks pinned by the golden fixture (embedded at
/// compile time, so fixture and corpus cannot drift apart silently).
pub fn golden_deck_scenarios() -> Vec<Scenario> {
    let decks: [(&str, &str); 2] = [
        (
            "coupled_pair",
            include_str!("../../../examples/decks/coupled_pair.cir"),
        ),
        (
            "nonpassive_ladder",
            include_str!("../../../examples/decks/nonpassive_ladder.cir"),
        ),
    ];
    decks
        .into_iter()
        .map(|(name, text)| {
            let deck = ds_netlist::parse_deck(text)
                .unwrap_or_else(|e| panic!("committed deck {name} does not parse: {e}"));
            Scenario::from_deck(name, &deck)
        })
        .collect()
}

/// The scenarios pinned by the golden fixture: every family at small orders.
pub fn golden_scenarios() -> Vec<Scenario> {
    let mut scenarios = vec![
        Scenario::new(FamilyKind::RcLadder, 4),
        Scenario::new(FamilyKind::RcLadder, 8),
        Scenario::new(FamilyKind::RlcLadder, 3),
        Scenario::new(FamilyKind::ImpulsiveLadder, 8),
        Scenario::new(FamilyKind::ImpulsiveLadder, 12),
        Scenario::new(FamilyKind::RcGrid, 3),
        Scenario::new(FamilyKind::MultiportLadder, 2).with_ports(2),
        Scenario::new(FamilyKind::MultiportLadder, 2).with_ports(3),
        Scenario::new(FamilyKind::MultiportLadderImpulsive, 2).with_ports(2),
        Scenario::new(FamilyKind::CoupledMesh, 3),
        Scenario::new(FamilyKind::TlineChain, 3),
        Scenario::new(FamilyKind::PerturbedBoundary, 5).with_seed(1),
        Scenario::new(FamilyKind::PerturbedBoundary, 5)
            .with_ports(2)
            .with_margin(0.25)
            .with_seed(1),
        Scenario::new(FamilyKind::PerturbedBoundary, 6)
            .with_margin(0.5)
            .with_seed(2),
        Scenario::new(FamilyKind::BoundaryBand, 0)
            .with_ports(2)
            .with_seed(1),
        Scenario::new(FamilyKind::BoundaryBand, 0)
            .with_margin(0.5)
            .with_seed(2),
        Scenario::new(FamilyKind::NonpassiveLadder, 8),
        Scenario::new(FamilyKind::NegativeM1, 8),
        Scenario::new(FamilyKind::RandomPassive, 5),
        Scenario::new(FamilyKind::RandomPassive, 6)
            .with_ports(2)
            .with_seed(1),
        Scenario::new(FamilyKind::RandomNonpassive, 5),
        // Reduce-then-verify cells at fixture-friendly original orders: 49
        // (one section past the default target, so the projection truncates)
        // and 199 with the coupled-inductor variant.
        Scenario::new(FamilyKind::Reduced, 24),
        Scenario::new(FamilyKind::Reduced, 99).with_seed(1),
    ];
    scenarios.extend(golden_deck_scenarios());
    scenarios
}

/// Whether a golden scenario participates in the LMI column.  Besides the
/// order gate, the expected-nonpassive cells are kept out (certifying
/// infeasibility makes the first-order solver exhaust its whole iteration
/// budget — several seconds per cell in debug builds, which would dominate
/// the conformance suite) except for one pinned rejection cell; the LMI
/// reject path is additionally covered by `tests/method_agreement.rs`.
fn lmi_in_golden(scenario: &Scenario) -> bool {
    if scenario.order() > GOLDEN_LMI_MAX_ORDER {
        return false;
    }
    match scenario.family {
        FamilyKind::NonpassiveLadder | FamilyKind::NegativeM1 => false,
        FamilyKind::PerturbedBoundary | FamilyKind::BoundaryBand => scenario.margin == 0.0,
        // Same policy for decks: only expected-passive ones join the LMI
        // column (the infeasibility certificate is the slow path).
        FamilyKind::Deck => scenario
            .deck
            .as_ref()
            .is_some_and(|deck| deck.expected_passive),
        _ => true,
    }
}

/// The golden task matrix: proposed + Weierstrass on every scenario, LMI on
/// the small-order subset selected by [`lmi_in_golden`].
pub fn golden_tasks() -> Vec<SweepTask> {
    let scenarios = golden_scenarios();
    let mut tasks = scenario_matrix(&scenarios, &[Method::Proposed, Method::Weierstrass]);
    let lmi_scenarios: Vec<Scenario> = scenarios.into_iter().filter(lmi_in_golden).collect();
    tasks.extend(scenario_matrix(&lmi_scenarios, &[Method::Lmi]));
    tasks
}

/// Canonical fixture serialization: a pretty-printed JSON document with one
/// cell per golden task, in task order.
pub fn render_golden(records: &[SweepRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {GOLDEN_VERSION},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, record) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "    {{\"family\": {}, \"scenario\": {}, \"order\": {}, \"ports\": {}, ",
                "\"seed\": {}, \"margin\": {}, \"method\": {}, \"passive\": {}, ",
                "\"strict\": {}, \"reason\": {}, \"violation_count\": {}, ",
                "\"witness\": {}}}{}\n"
            ),
            json::quote(record.family),
            json::quote(&record.scenario),
            record.order,
            record.ports,
            record.seed,
            json::number(record.margin),
            json::quote(record.method),
            json::opt_bool(record.passive),
            record.strict,
            json::quote(&record.reason),
            json::opt_usize(record.violation_count),
            json::opt_number(record.witness_frequency),
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Whether two optional witness frequencies agree within `rel_tol`
/// (relative to their magnitude, with a floor of `rel_tol` in absolute
/// terms so witnesses at or near ω = 0 compare sanely).
fn witness_close(got: Option<f64>, want: Option<f64>, rel_tol: f64) -> bool {
    match (got, want) {
        (None, None) => true,
        (Some(a), Some(b)) => (a - b).abs() <= rel_tol * a.abs().max(b.abs()).max(1.0),
        _ => false,
    }
}

/// Semantic-equivalence comparison of a golden sweep against the committed
/// fixture text: every discrete field must match exactly; the witness
/// frequency only within `rel_tol` (use [`SEMANTIC_REL_TOL`]).
///
/// Returns the list of human-readable mismatches — empty means the sweep is
/// semantically identical to the fixture even if the serialized bytes drift
/// (e.g. after a floating-point-reordering kernel change).
///
/// # Errors
///
/// A malformed fixture (unparsable JSON, wrong version, missing keys) is
/// reported as a single-entry mismatch list rather than a panic, so the
/// caller's failure message always shows what was compared.
pub fn semantic_diff(records: &[SweepRecord], fixture: &str, rel_tol: f64) -> Vec<String> {
    let value = match json::parse(fixture) {
        Ok(v) => v,
        Err(e) => return vec![format!("fixture does not parse: {e}")],
    };
    if value.get("version").and_then(json::Value::as_f64) != Some(GOLDEN_VERSION as f64) {
        return vec![format!(
            "fixture version is not {GOLDEN_VERSION}: {:?}",
            value.get("version")
        )];
    }
    let Some(cells) = value.get("cells").and_then(json::Value::as_array) else {
        return vec!["fixture has no 'cells' array".to_string()];
    };
    if cells.len() != records.len() {
        return vec![format!(
            "cell count differs: swept {} vs fixture {}",
            records.len(),
            cells.len()
        )];
    }
    let mut mismatches = Vec::new();
    for (i, (record, cell)) in records.iter().zip(cells.iter()).enumerate() {
        let ctx = |field: &str, got: String, want: String| {
            format!(
                "cell {i} ({} / {} / {}): {field} = {got}, fixture has {want}",
                record.family, record.scenario, record.method
            )
        };
        let mut check_str = |field: &str, got: &str| {
            let want = cell.get(field).and_then(json::Value::as_str).unwrap_or("?");
            if got != want {
                mismatches.push(ctx(field, got.to_string(), want.to_string()));
            }
        };
        check_str("family", record.family);
        check_str("scenario", &record.scenario);
        check_str("method", record.method);
        check_str("reason", &record.reason);
        let mut check_num = |field: &str, got: f64| {
            let want = cell.get(field).and_then(json::Value::as_f64);
            if want != Some(got) {
                mismatches.push(ctx(field, format!("{got}"), format!("{want:?}")));
            }
        };
        check_num("order", record.order as f64);
        check_num("ports", record.ports as f64);
        check_num("seed", record.seed as f64);
        check_num("margin", record.margin);
        let passive = cell.get("passive").and_then(json::Value::as_bool);
        if passive != record.passive {
            mismatches.push(ctx(
                "passive",
                format!("{:?}", record.passive),
                format!("{passive:?}"),
            ));
        }
        let strict = cell.get("strict").and_then(json::Value::as_bool);
        if strict != Some(record.strict) {
            mismatches.push(ctx(
                "strict",
                format!("{}", record.strict),
                format!("{strict:?}"),
            ));
        }
        let count = cell.get("violation_count").and_then(json::Value::as_f64);
        if count != record.violation_count.map(|c| c as f64) {
            mismatches.push(ctx(
                "violation_count",
                format!("{:?}", record.violation_count),
                format!("{count:?}"),
            ));
        }
        // The one approximate field: witness frequencies within rel_tol are
        // the same violation, so roundoff-level drift is not a mismatch.
        let witness = cell.get("witness").and_then(json::Value::as_f64);
        if !witness_close(record.witness_frequency, witness, rel_tol) {
            mismatches.push(ctx(
                "witness",
                format!("{:?}", record.witness_frequency),
                format!("{witness:?} (rel tol {rel_tol:e})"),
            ));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_matrix_is_stable_and_small() {
        let tasks = golden_tasks();
        // 25 scenarios × 2 methods + the small-order LMI subset.
        assert!(tasks.len() >= 50, "golden matrix shrank: {}", tasks.len());
        assert!(tasks.len() <= 76, "golden matrix grew: {}", tasks.len());
        assert!(tasks
            .iter()
            .filter(|t| t.method == Method::Lmi)
            .all(|t| t.scenario.order() <= GOLDEN_LMI_MAX_ORDER));
        // Every family is represented.
        for family in [
            "rc_ladder",
            "multiport_ladder",
            "coupled_mesh",
            "tline_chain",
            "perturbed_boundary",
            "boundary_band",
            "deck",
            "random_nonpassive",
            "reduced",
        ] {
            assert!(
                tasks.iter().any(|t| t.scenario.family.name() == family),
                "family {family} missing from the golden matrix"
            );
        }
    }

    #[test]
    fn rendered_fixture_is_valid_json() {
        let result = crate::sweep::run_sweep(&crate::sweep::SweepSpec::new(
            scenario_matrix(
                &[Scenario::new(FamilyKind::RcLadder, 3)],
                &[Method::Proposed],
            ),
            1,
        ));
        let text = render_golden(&result.records);
        let value = crate::json::parse(&text).unwrap();
        assert_eq!(
            value.get("version").unwrap().as_f64(),
            Some(GOLDEN_VERSION as f64)
        );
        assert_eq!(value.get("cells").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn semantic_diff_accepts_roundoff_and_rejects_verdict_drift() {
        let result = crate::sweep::run_sweep(&crate::sweep::SweepSpec::new(
            scenario_matrix(
                &[Scenario::new(FamilyKind::NonpassiveLadder, 8)],
                &[Method::Proposed],
            ),
            1,
        ));
        let fixture = render_golden(&result.records);
        assert!(semantic_diff(&result.records, &fixture, SEMANTIC_REL_TOL).is_empty());

        // Roundoff-level witness drift is not a semantic difference...
        let mut nudged = result.records.clone();
        if let Some(w) = nudged[0].witness_frequency.as_mut() {
            *w *= 1.0 + 1e-9;
        }
        assert!(semantic_diff(&nudged, &fixture, SEMANTIC_REL_TOL).is_empty());
        // ...but a witness on a different band (or appearing from nowhere,
        // when the fixture's violation sits at ω = ∞ with no witness) is.
        let mut moved = result.records.clone();
        moved[0].witness_frequency =
            Some(moved[0].witness_frequency.map_or(123.0, |w| 10.0 * w + 1.0));
        let diffs = semantic_diff(&moved, &fixture, SEMANTIC_REL_TOL);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("witness"), "{diffs:?}");

        // And so is any discrete-field change, e.g. a flipped verdict.
        let mut flipped = result.records.clone();
        flipped[0].passive = Some(true);
        flipped[0].reason = String::new();
        let diffs = semantic_diff(&flipped, &fixture, SEMANTIC_REL_TOL);
        assert!(
            diffs.iter().any(|d| d.contains("passive")),
            "flipped verdict must be reported: {diffs:?}"
        );
    }

    #[test]
    fn witness_close_handles_presence_and_zero() {
        assert!(witness_close(None, None, 1e-6));
        assert!(!witness_close(Some(1.0), None, 1e-6));
        assert!(!witness_close(None, Some(1.0), 1e-6));
        // Absolute floor near zero.
        assert!(witness_close(Some(0.0), Some(1e-9), 1e-6));
        // Large magnitudes compare relatively.
        assert!(witness_close(Some(1e6), Some(1e6 * (1.0 + 1e-8)), 1e-6));
        assert!(!witness_close(Some(1e6), Some(2e6), 1e-6));
    }
}
