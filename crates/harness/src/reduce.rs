//! Reduce-then-verify: the sparse path behind [`FamilyKind::Reduced`].
//!
//! An order-10⁴ RLC netlist never materializes a dense matrix on this path:
//! it is stamped with `ds_circuits::mna::stamp_sparse` and projected by the
//! PRIMA-style block-Krylov congruence of `ds_shh::krylov` down to a dense
//! model of order ≈ [`ReduceSpec::target_order`], which the existing exact
//! passivity methods then verify unchanged.  Congruence preserves passivity
//! for RLC structure, so the reduced verdict is the netlist's verdict.
//!
//! [`FamilyKind::Reduced`]: crate::scenario::FamilyKind::Reduced

use crate::scenario::Scenario;
use ds_circuits::generators::{self, CircuitModel};
use ds_circuits::{mna, CircuitError, Netlist};
use ds_shh::krylov::{self, ReduceSpec};
use std::time::Instant;

/// Diagnostics of one reduction, persisted next to the verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionStats {
    /// Achieved reduced order.
    pub reduced_order: usize,
    /// Krylov truncation residual (`0` when the projection is exact).
    pub residual: f64,
    /// Wall-clock nanoseconds of sparse stamp + projection.
    pub reduction_ns: u64,
}

/// Stamps a netlist sparsely and reduces it, returning the dense reduced
/// model plus the reduction diagnostics.
///
/// # Errors
///
/// Propagates stamping failures; reduction failures surface as
/// [`CircuitError::BadElementValue`] with a `krylov reduction failed` prefix.
pub fn reduce_netlist(
    netlist: &Netlist,
    spec: &ReduceSpec,
) -> Result<(ds_descriptor::DescriptorSystem, ReductionStats), CircuitError> {
    let start = Instant::now();
    let mna = mna::stamp_sparse(netlist)?;
    let reduction = krylov::reduce_prima(&mna.c_matrix(), &mna.g_matrix(), &mna.b_dense(), spec)
        .map_err(|e| CircuitError::BadElementValue {
            details: format!("krylov reduction failed: {e}"),
        })?;
    let stats = ReductionStats {
        reduced_order: reduction.reduced_order,
        residual: reduction.residual,
        reduction_ns: start.elapsed().as_nanos() as u64,
    };
    Ok((reduction.system, stats))
}

/// Builds the model for a [`FamilyKind::Reduced`] scenario: the RLC ladder
/// netlist of `size` sections (odd seeds add disjoint-pair inductive
/// couplings), reduced with the default [`ReduceSpec`].
///
/// # Errors
///
/// Propagates generator/stamping/reduction failures.
///
/// [`FamilyKind::Reduced`]: crate::scenario::FamilyKind::Reduced
pub fn build_reduced(scenario: &Scenario) -> Result<(CircuitModel, ReductionStats), CircuitError> {
    let coupled = reduced_is_coupled(scenario.seed);
    let netlist = generators::reduced_ladder_netlist(scenario.size, coupled)?;
    let (system, stats) = reduce_netlist(&netlist, &ReduceSpec::default())?;
    let suffix = if coupled { ",coupled" } else { "" };
    Ok((
        CircuitModel {
            name: format!("reduced_ladder(sections={}{suffix})", scenario.size),
            system,
            // Passive RLC netlist + congruence projection ⇒ passive.
            expected_passive: true,
            has_impulsive_modes: false,
        },
        stats,
    ))
}

/// Whether a `reduced` scenario seed selects the coupled-inductor variant.
pub fn reduced_is_coupled(seed: u64) -> bool {
    !seed.is_multiple_of(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FamilyKind;

    #[test]
    fn reduced_scenario_builds_a_small_passive_model() {
        let scenario = Scenario::new(FamilyKind::Reduced, 100);
        let (model, stats) = build_reduced(&scenario).unwrap();
        // Original order 201 projects to the default target 48.
        assert_eq!(model.system.order(), 48);
        assert_eq!(stats.reduced_order, 48);
        assert!(stats.residual >= 0.0 && stats.residual <= 1.0);
        assert!(stats.reduction_ns > 0);
        assert!(model.expected_passive);
        assert!(model.name.starts_with("reduced_ladder(sections=100"));
    }

    #[test]
    fn odd_seeds_select_the_coupled_variant() {
        let scenario = Scenario::new(FamilyKind::Reduced, 60).with_seed(1);
        let (model, stats) = build_reduced(&scenario).unwrap();
        assert!(model.name.contains("coupled"));
        assert_eq!(stats.reduced_order, 48);
    }

    #[test]
    fn small_sizes_pass_through_exactly() {
        let scenario = Scenario::new(FamilyKind::Reduced, 10);
        let (model, stats) = build_reduced(&scenario).unwrap();
        assert_eq!(model.system.order(), 21);
        assert_eq!(stats.reduced_order, 21);
        assert_eq!(stats.residual, 0.0);
    }
}

#[cfg(test)]
mod perf_smoke {
    use super::*;
    use crate::scenario::{FamilyKind, Scenario};

    #[test]
    #[ignore = "manual perf smoke"]
    fn order_10k_reduces_quickly() {
        let t = Instant::now();
        let scenario = Scenario::new(FamilyKind::Reduced, 5000).with_seed(1);
        let (model, stats) = build_reduced(&scenario).unwrap();
        eprintln!(
            "order 10001 -> {} in {:.3}s (residual {:.3e})",
            stats.reduced_order,
            t.elapsed().as_secs_f64(),
            stats.residual
        );
        assert_eq!(model.system.order(), 48);
    }
}
