//! The parallel sweep engine: a `std::thread` worker pool with work stealing
//! through a shared atomic cursor.
//!
//! Tasks are indexed `0..n`; every worker repeatedly claims the next index
//! with `fetch_add` on a shared [`AtomicUsize`], so the fastest workers
//! naturally steal the remaining work — no channels, no task queues, no
//! allocation in the steady state.  Records carry their task index, and the
//! engine sorts by it before returning, which makes the collected output
//! independent of the shard order (the determinism guarantee the conformance
//! suite pins down).

use crate::scenario::SweepTask;
use ds_descriptor::{transfer, DescriptorSystem};
use ds_linalg::workspace::{self, PoolStats};
use ds_passivity::{NonPassivityReason, PassivityVerdict};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How a single task ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// The model was built and the method returned a verdict.
    Ok,
    /// The scenario generator failed.
    BuildError,
    /// The passivity test failed structurally.
    MethodError,
}

impl TaskStatus {
    /// Stable identifier used in artifacts.
    pub fn name(self) -> &'static str {
        match self {
            TaskStatus::Ok => "ok",
            TaskStatus::BuildError => "build_error",
            TaskStatus::MethodError => "method_error",
        }
    }

    /// Parses a stable identifier back to the status (the inverse of
    /// [`TaskStatus::name`], used when loading persisted artifacts).
    pub fn parse(name: &str) -> Option<TaskStatus> {
        match name {
            "ok" => Some(TaskStatus::Ok),
            "build_error" => Some(TaskStatus::BuildError),
            "method_error" => Some(TaskStatus::MethodError),
            _ => None,
        }
    }
}

/// The outcome of one (scenario, method) task.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Index of the task in the sweep spec (the deterministic sort key).
    pub task_id: usize,
    /// Family identifier.
    pub family: &'static str,
    /// Full generator name with parameters.
    pub scenario: String,
    /// MNA state dimension (from the scenario's order formula).
    pub order: usize,
    /// Number of ports.
    pub ports: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Violation margin (0 for families without one).
    pub margin: f64,
    /// Method name.
    pub method: &'static str,
    /// How the task ended.
    pub status: TaskStatus,
    /// The verdict (`None` when the task errored).
    pub passive: Option<bool>,
    /// Whether the passive verdict was strict.
    pub strict: bool,
    /// Stable reason slug for non-passive verdicts, or the error text.
    pub reason: String,
    /// Ground truth from the generator (`None` when the model never built,
    /// so the ground truth was never observed).
    pub expected_passive: Option<bool>,
    /// Whether the verdict matched the ground truth (`None` on errors).
    pub agrees: Option<bool>,
    /// Number of frequency-grid samples at which the model's Popov function
    /// has a negative eigenvalue (`None` when sampling was disabled or the
    /// model failed to build).
    pub violation_count: Option<usize>,
    /// Witness frequency (rad/s) of the positive-realness violation, when the
    /// verdict carries one.  Unlike the other verdict fields this is a
    /// floating-point by-product of an iterative eigensolve, so golden
    /// comparisons treat it as approximate (see `golden::semantic_diff`).
    pub witness_frequency: Option<f64>,
    /// Achieved reduced order for reduce-then-verify tasks (`None` for the
    /// dense families).
    pub reduced_order: Option<usize>,
    /// Krylov truncation residual for reduce-then-verify tasks.
    pub residual: Option<f64>,
    /// Wall-clock nanoseconds of sparse stamp + Krylov projection for
    /// reduce-then-verify tasks.  Persisted in the JSONL artifact — unlike
    /// `elapsed`/`stage_ns` it is part of the reduction's recorded outcome,
    /// and golden comparisons never read it.
    pub reduction_ns: Option<u64>,
    /// Per-stage wall-clock nanoseconds of the method run, laid out in the
    /// canonical `ds_obs::STAGES` order (seven pipeline stages then the
    /// total).  Volatile like `elapsed`/`worker`: excluded from the JSONL
    /// artifact and both golden modes, restored as `None` from the store.
    pub stage_ns: Option<[u64; 8]>,
    /// Wall-clock time of the method run (build and sampling excluded).
    pub elapsed: Duration,
    /// Which worker executed the task.
    pub worker: usize,
}

/// Flattens a report's [`StageTimings`](ds_passivity::report::StageTimings)
/// into the canonical 8-slot nanosecond layout of [`SweepRecord::stage_ns`]:
/// the seven pipeline stages in `ds_obs::STAGES` order, then their sum as
/// `total`.
pub fn stage_ns_array(timings: &ds_passivity::report::StageTimings) -> [u64; 8] {
    let ns = |d: Duration| d.as_nanos() as u64;
    [
        ns(timings.build_phi),
        ns(timings.impulse_removal),
        ns(timings.nondynamic_removal),
        ns(timings.residue_extraction),
        ns(timings.regularization),
        ns(timings.spectral_split),
        ns(timings.positive_real_test),
        ns(timings.total()),
    ]
}

/// A full sweep specification.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The task list (ordering defines `task_id` unless `task_ids` is set).
    pub tasks: Vec<SweepTask>,
    /// Worker-pool size (clamped to at least 1 and at most the task count).
    pub threads: usize,
    /// Whether to sample the deterministic violation-frequency count for each
    /// model (adds `O(n³)` work per task; disable for pure timing sweeps).
    pub sample_violations: bool,
    /// Optional explicit task ids, one per task.  A sharded or resumed run
    /// executes a *subset* of a larger matrix; carrying the global indices
    /// here keeps the emitted records' `task` fields — and therefore the
    /// merged, sorted store artifact — identical to a single-process run of
    /// the full matrix.  `None` means `0..tasks.len()`.
    pub task_ids: Option<Vec<usize>>,
}

impl SweepSpec {
    /// A spec with violation sampling enabled.
    pub fn new(tasks: Vec<SweepTask>, threads: usize) -> Self {
        SweepSpec {
            tasks,
            threads,
            sample_violations: true,
            task_ids: None,
        }
    }

    /// Attaches explicit (global) task ids; `ids` must have one entry per
    /// task.
    #[must_use]
    pub fn with_task_ids(mut self, ids: Vec<usize>) -> Self {
        assert_eq!(
            ids.len(),
            self.tasks.len(),
            "task_ids must match the task list length"
        );
        self.task_ids = Some(ids);
        self
    }
}

/// The result of a sweep: records sorted by task id plus engine metadata.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One record per task, sorted by `task_id`.
    pub records: Vec<SweepRecord>,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Number of workers actually used.
    pub threads: usize,
    /// Aggregated eigen-workspace pool usage across the worker threads.  Every
    /// worker owns a per-thread `ds_linalg` [`workspace::WorkspacePool`] keyed
    /// by matrix dimension, so a stream of same-order tasks reuses warm
    /// buffers: `hits` counts the kernel invocations that found one.
    pub workspace: PoolStats,
}

/// The fixed frequency grid (rad/s) used for the deterministic
/// violation-frequency count: `ω = 0` plus 28 logarithmically spaced points
/// covering `10⁻³ … 10⁶`.
pub fn violation_frequency_grid() -> Vec<f64> {
    let mut grid = vec![0.0];
    for k in 0..28 {
        grid.push(1e-3 * 10f64.powf(k as f64 / 3.0));
    }
    grid
}

/// Counts the grid frequencies at which the Popov function `G(jω) + G(jω)ᴴ`
/// of the model has an eigenvalue below `−10⁻⁷ · scale`.  Deterministic for a
/// given model, so golden fixtures can pin it.
///
/// # Errors
///
/// Propagates transfer-function evaluation failures (singular-pencil samples
/// are skipped, matching the positive-real sampling test).
pub fn violation_frequency_count(
    system: &DescriptorSystem,
) -> Result<usize, ds_descriptor::DescriptorError> {
    let scale = system.scale().max(1.0);
    let threshold = -1e-7 * scale;
    let mut count = 0usize;
    for &w in &violation_frequency_grid() {
        let value = match transfer::evaluate_jomega(system, w) {
            Ok(v) => v,
            Err(ds_descriptor::DescriptorError::SingularPencil) => continue,
            Err(e) => return Err(e),
        };
        if value.popov_min_eigenvalue()? < threshold {
            count += 1;
        }
    }
    Ok(count)
}

/// The frequency at which a rejection was witnessed, when the reason
/// records one.
pub fn verdict_witness(verdict: &PassivityVerdict) -> Option<f64> {
    match verdict {
        PassivityVerdict::NotPassive {
            reason:
                NonPassivityReason::ProperPartNotPositiveReal {
                    witness_frequency, ..
                },
        } => *witness_frequency,
        _ => None,
    }
}

/// Maps a verdict to `(passive, strict, reason-slug)` for the artifacts.
pub fn verdict_fields(verdict: &PassivityVerdict) -> (bool, bool, &'static str) {
    match verdict {
        PassivityVerdict::Passive { strictly } => (true, *strictly, ""),
        PassivityVerdict::NotPassive { reason } => {
            let slug = match reason {
                NonPassivityReason::ResidualImpulsiveModes => "residual_impulsive_modes",
                NonPassivityReason::HigherOrderMarkovParameters => "higher_order_markov",
                NonPassivityReason::IndefiniteResidue { .. } => "indefinite_residue",
                NonPassivityReason::UnstableFiniteModes => "unstable_finite_modes",
                NonPassivityReason::ProperPartNotPositiveReal { .. } => {
                    "proper_part_not_positive_real"
                }
                NonPassivityReason::LmiInfeasible { .. } => "lmi_infeasible",
            };
            (false, false, slug)
        }
    }
}

fn run_task(
    task_id: usize,
    task: &SweepTask,
    worker: usize,
    violation_count: Option<usize>,
) -> SweepRecord {
    let scenario = &task.scenario;
    let mut record = SweepRecord {
        task_id,
        family: scenario.family.name(),
        scenario: String::new(),
        order: scenario.order(),
        ports: scenario.ports,
        seed: scenario.seed,
        margin: scenario.margin,
        method: task.method.name(),
        status: TaskStatus::Ok,
        passive: None,
        strict: false,
        reason: String::new(),
        expected_passive: None,
        agrees: None,
        violation_count,
        witness_frequency: None,
        reduced_order: None,
        residual: None,
        reduction_ns: None,
        stage_ns: None,
        elapsed: Duration::ZERO,
        worker,
    };
    // Reduce-then-verify families build through the sparse path so the
    // reduction diagnostics land on the record; everything else uses the
    // scenario's own builder.
    let built = if scenario.family == crate::scenario::FamilyKind::Reduced {
        crate::reduce::build_reduced(scenario).map(|(model, stats)| (model, Some(stats)))
    } else {
        scenario.build().map(|model| (model, None))
    };
    let (model, reduction) = match built {
        Ok(pair) => pair,
        Err(e) => {
            record.status = TaskStatus::BuildError;
            record.reason = e.to_string();
            return record;
        }
    };
    if let Some(stats) = reduction {
        record.reduced_order = Some(stats.reduced_order);
        record.residual = Some(stats.residual);
        record.reduction_ns = Some(stats.reduction_ns);
    }
    record.scenario = model.name.clone();
    record.expected_passive = Some(model.expected_passive);
    let start = Instant::now();
    let report = crate::method::run_method(task.method, &model);
    record.elapsed = start.elapsed();
    match report {
        Ok(report) => {
            let (passive, strict, slug) = verdict_fields(&report.verdict);
            record.passive = Some(passive);
            record.strict = strict;
            record.reason = slug.to_string();
            record.agrees = Some(passive == model.expected_passive);
            record.witness_frequency = verdict_witness(&report.verdict);
            record.stage_ns = Some(stage_ns_array(&report.timings));
        }
        Err(e) => {
            record.status = TaskStatus::MethodError;
            record.reason = e.to_string();
        }
    }
    record
}

/// Runs a single task outside the worker pool and returns its record — the
/// entry point the unified `CheckRequest` pipeline (and through it the
/// `ds-serve` daemon) shares with the sweep engine, so a verdict computed for
/// one request is field-for-field identical to the record a sweep over the
/// same scenario would emit.
///
/// The violation-frequency sampling pre-pass is skipped (`violation_count`
/// stays `None`): it is a sweep diagnostic, not part of the verdict.
pub fn run_single(task: &SweepTask, task_id: usize) -> SweepRecord {
    run_task(task_id, task, 0, None)
}

/// Deduplicates scenarios across the task list and computes the deterministic
/// violation-frequency count once per unique scenario, in parallel on the
/// same worker-pool pattern.  Returns the per-task counts.
///
/// Dedup is keyed on [`crate::scenario::ScenarioKey`] through a hash map, so
/// the pre-pass stays `O(n)` over 10⁵-task matrices (a linear scan per task
/// made it quadratic and dominated large-ensemble startup).
fn sample_violation_counts(tasks: &[SweepTask], threads: usize) -> Vec<Option<usize>> {
    let mut unique: Vec<&crate::scenario::Scenario> = Vec::new();
    let mut index_of: std::collections::HashMap<crate::scenario::ScenarioKey, usize> =
        std::collections::HashMap::with_capacity(tasks.len());
    let task_to_unique: Vec<usize> = tasks
        .iter()
        .map(|task| {
            *index_of.entry(task.scenario.key()).or_insert_with(|| {
                unique.push(&task.scenario);
                unique.len() - 1
            })
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    let counts: Vec<Option<usize>> = {
        let mut slots: Vec<Option<usize>> = vec![None; unique.len()];
        let workers = threads.clamp(1, unique.len().max(1));
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                let unique = &unique;
                handles.push(scope.spawn(move || {
                    let mut shard: Vec<(usize, Option<usize>)> = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= unique.len() {
                            break;
                        }
                        let count = unique[index]
                            .build()
                            .ok()
                            .and_then(|model| violation_frequency_count(&model.system).ok());
                        shard.push((index, count));
                    }
                    shard
                }));
            }
            for handle in handles {
                for (index, count) in handle.join().expect("sampling worker panicked") {
                    slots[index] = count;
                }
            }
        });
        slots
    };
    task_to_unique.iter().map(|&u| counts[u]).collect()
}

/// Runs a sweep, streaming each record through `on_record` as it completes
/// (in completion order, from the worker that produced it) and returning all
/// records sorted by task id.
pub fn run_sweep_with_progress(
    spec: &SweepSpec,
    on_record: Option<&(dyn Fn(&SweepRecord) + Sync)>,
) -> SweepResult {
    let tasks = &spec.tasks;
    let threads = spec.threads.clamp(1, tasks.len().max(1));
    let start = Instant::now();
    // The O(n³) Popov-grid sampling depends only on the scenario, not the
    // method, so it runs once per unique scenario in a parallel pre-pass.
    let violation_counts: Vec<Option<usize>> = if spec.sample_violations {
        sample_violation_counts(tasks, threads)
    } else {
        vec![None; tasks.len()]
    };
    let task_ids = spec.task_ids.as_deref();
    if let Some(ids) = task_ids {
        assert_eq!(
            ids.len(),
            tasks.len(),
            "task_ids must match the task list length"
        );
    }
    let cursor = AtomicUsize::new(0);
    let mut shards: Vec<Vec<SweepRecord>> = Vec::with_capacity(threads);
    let mut workspace = PoolStats::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let cursor = &cursor;
            let violation_counts = &violation_counts;
            handles.push(scope.spawn(move || {
                let mut shard = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= tasks.len() {
                        break;
                    }
                    let task_id = task_ids.map_or(index, |ids| ids[index]);
                    let record = run_task(task_id, &tasks[index], worker, violation_counts[index]);
                    if let Some(callback) = on_record {
                        callback(&record);
                    }
                    shard.push(record);
                }
                // Each worker thread owns one eigen-workspace pool (thread
                // local in ds-linalg), reused across every task it claimed;
                // report its usage so the engine can aggregate.
                (shard, workspace::thread_pool_stats())
            }));
        }
        for handle in handles {
            let (shard, stats) = handle.join().expect("sweep worker panicked");
            shards.push(shard);
            workspace = workspace.merged(stats);
        }
    });
    let wall = start.elapsed();
    let mut records: Vec<SweepRecord> = shards.into_iter().flatten().collect();
    records.sort_by_key(|r| r.task_id);
    SweepResult {
        records,
        wall,
        threads,
        workspace,
    }
}

/// Runs a sweep without progress streaming.
pub fn run_sweep(spec: &SweepSpec) -> SweepResult {
    run_sweep_with_progress(spec, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::scenario::{quick_scenarios, scenario_matrix, FamilyKind, Scenario};
    use std::sync::Mutex;

    #[test]
    fn violation_grid_is_fixed() {
        let grid = violation_frequency_grid();
        assert_eq!(grid.len(), 29);
        assert_eq!(grid[0], 0.0);
        assert!((grid[1] - 1e-3).abs() < 1e-15);
        assert!(grid.last().unwrap() > &0.9e6);
    }

    #[test]
    fn violation_count_zero_for_passive_positive_for_violating() {
        let passive = Scenario::new(FamilyKind::RlcLadder, 3).build().unwrap();
        assert_eq!(violation_frequency_count(&passive.system).unwrap(), 0);
        let violating = Scenario::new(FamilyKind::NonpassiveLadder, 8)
            .build()
            .unwrap();
        assert!(violation_frequency_count(&violating.system).unwrap() > 0);
    }

    #[test]
    fn sweep_runs_every_task_exactly_once_and_sorts() {
        let scenarios = vec![
            Scenario::new(FamilyKind::RcLadder, 3),
            Scenario::new(FamilyKind::NonpassiveLadder, 6),
            Scenario::new(FamilyKind::TlineChain, 2),
        ];
        let tasks = scenario_matrix(&scenarios, &[Method::Proposed]);
        let n = tasks.len();
        let spec = SweepSpec::new(tasks, 3);
        let result = run_sweep(&spec);
        assert_eq!(result.records.len(), n);
        for (i, record) in result.records.iter().enumerate() {
            assert_eq!(record.task_id, i);
            assert_eq!(record.status, TaskStatus::Ok);
            assert_eq!(record.agrees, Some(true), "task {i}: {}", record.reason);
        }
    }

    #[test]
    fn build_errors_are_recorded_not_fatal() {
        // sections = 0 is unrealizable.
        let tasks = scenario_matrix(
            &[Scenario::new(FamilyKind::RcLadder, 0)],
            &[Method::Proposed],
        );
        let result = run_sweep(&SweepSpec::new(tasks, 1));
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.records[0].status, TaskStatus::BuildError);
        assert!(result.records[0].passive.is_none());
        // Ground truth was never observed, so it must not default to a value.
        assert!(result.records[0].expected_passive.is_none());
        assert!(result.records[0].agrees.is_none());
        assert!(!result.records[0].reason.is_empty());
    }

    #[test]
    fn progress_callback_sees_every_record() {
        let tasks = scenario_matrix(&quick_scenarios(), &[Method::Proposed]);
        let n = tasks.len();
        let seen = Mutex::new(Vec::new());
        let result = run_sweep_with_progress(
            &SweepSpec::new(tasks, 4),
            Some(&|r: &SweepRecord| crate::sync::lock_infallible(&seen).push(r.task_id)),
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        assert_eq!(result.threads, 4.min(n));
    }

    #[test]
    fn violation_counts_are_shared_across_methods_of_one_scenario() {
        let scenarios = vec![Scenario::new(FamilyKind::NonpassiveLadder, 8)];
        let tasks = scenario_matrix(&scenarios, &[Method::Proposed, Method::Weierstrass]);
        let result = run_sweep(&SweepSpec::new(tasks, 2));
        let counts: Vec<_> = result.records.iter().map(|r| r.violation_count).collect();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0], counts[1]);
        assert!(counts[0].unwrap() > 0);
    }

    #[test]
    fn explicit_task_ids_are_carried_into_records() {
        let scenarios = vec![
            Scenario::new(FamilyKind::RcLadder, 3),
            Scenario::new(FamilyKind::TlineChain, 2),
        ];
        let tasks = scenario_matrix(&scenarios, &[Method::Proposed]);
        let spec = SweepSpec::new(tasks, 2).with_task_ids(vec![7, 3]);
        let result = run_sweep(&spec);
        let ids: Vec<_> = result.records.iter().map(|r| r.task_id).collect();
        // Records come back sorted by the *global* ids.
        assert_eq!(ids, vec![3, 7]);
        assert_eq!(result.records[0].family, "tline_chain");
        assert_eq!(result.records[1].family, "rc_ladder");
    }

    #[test]
    fn workspace_pool_is_reused_across_same_order_tasks() {
        // Two tasks of the same scenario on one worker: the second task's
        // eigen kernels must find warm per-dimension workspaces.
        let scenarios = vec![Scenario::new(FamilyKind::ImpulsiveLadder, 12)];
        let tasks = scenario_matrix(&scenarios, &[Method::Proposed, Method::Proposed]);
        let result = run_sweep(&SweepSpec::new(tasks, 1));
        assert!(
            result.workspace.misses > 0,
            "the first task must populate the pool"
        );
        assert!(
            result.workspace.hits > result.workspace.misses,
            "steady-state tasks must reuse pooled workspaces (hits {} misses {})",
            result.workspace.hits,
            result.workspace.misses
        );
        assert!(result.workspace.resident_bytes > 0);
    }

    #[test]
    fn thread_count_is_clamped() {
        let tasks = scenario_matrix(
            &[Scenario::new(FamilyKind::RcLadder, 3)],
            &[Method::Proposed],
        );
        let result = run_sweep(&SweepSpec::new(tasks.clone(), 0));
        assert_eq!(result.threads, 1);
        let result = run_sweep(&SweepSpec::new(tasks, 64));
        assert_eq!(
            result.threads, 1,
            "one task cannot use more than one worker"
        );
    }

    #[test]
    fn stage_ns_array_layout_matches_the_canonical_stage_list() {
        // The 8-slot layout is coupled to `ds_obs::STAGES` by position; pin
        // both sides so neither can drift silently.
        assert_eq!(
            ds_obs::STAGES,
            [
                "build_phi",
                "impulse",
                "nondynamic",
                "residue",
                "regularize",
                "split",
                "pr_test",
                "total"
            ]
        );
        let timings = ds_passivity::report::StageTimings {
            build_phi: Duration::from_nanos(1),
            impulse_removal: Duration::from_nanos(2),
            nondynamic_removal: Duration::from_nanos(3),
            residue_extraction: Duration::from_nanos(4),
            regularization: Duration::from_nanos(5),
            spectral_split: Duration::from_nanos(6),
            positive_real_test: Duration::from_nanos(7),
        };
        assert_eq!(stage_ns_array(&timings), [1, 2, 3, 4, 5, 6, 7, 28]);
    }

    #[test]
    fn completed_tasks_carry_volatile_stage_timings() {
        let task = SweepTask {
            scenario: Scenario::new(FamilyKind::RcLadder, 4),
            method: Method::Proposed,
        };
        let record = run_single(&task, 0);
        assert_eq!(record.status, TaskStatus::Ok);
        let stage_ns = record.stage_ns.expect("stage timings on an ok record");
        let total = stage_ns[stage_ns.len() - 1];
        assert_eq!(stage_ns.iter().take(7).sum::<u64>(), total);
        assert!(total > 0, "total stage time cannot be zero");
        assert!(total <= record.elapsed.as_nanos() as u64 * 2);
    }
}
