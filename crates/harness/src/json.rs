//! Hand-rolled JSON support: a serializer for the sweep artifacts and a
//! minimal recursive-descent parser used to validate them.
//!
//! Vendor policy: the build environment has no registry access, so instead of
//! pulling in `serde_json` the harness emits JSON through small formatting
//! helpers and validates it with the parser below.  The parser supports the
//! full JSON grammar needed by the artifacts (objects, arrays, strings with
//! escapes, numbers, booleans, null) and nothing more.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (adds the quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (shortest round-trip form); non-finite
/// values — which JSON cannot represent — become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Formats an optional boolean as `true` / `false` / `null`.
pub fn opt_bool(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "true",
        Some(false) => "false",
        None => "null",
    }
}

/// Formats an optional `f64` as a JSON number or `null` (absent and
/// non-finite values both collapse to `null`, like [`number`]).
pub fn opt_number(v: Option<f64>) -> String {
    match v {
        Some(x) => number(x),
        None => "null".to_string(),
    }
}

/// Formats an optional unsigned count as a number or `null`.
pub fn opt_usize(v: Option<usize>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error found.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

/// Checks a candidate span against the JSON number grammar
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`).  Rust's `f64::from_str`
/// is more permissive (`+1`, `1.`, `.5`, `01`, `inf`), so the span must be
/// validated before it is handed over.
fn is_json_number(bytes: &[u8]) -> bool {
    let mut i = 0usize;
    if bytes.get(i) == Some(&b'-') {
        i += 1;
    }
    match bytes.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    if bytes.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(bytes.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    if matches!(bytes.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(bytes.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(bytes.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    i == bytes.len()
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let span = &bytes[start..*pos];
    let text = std::str::from_utf8(span).map_err(|e| e.to_string())?;
    if !is_json_number(span) {
        return Err(format!("invalid number '{text}' at byte {start}"));
    }
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

/// Reads the four hex digits of a `\u` escape starting at byte `at`.  Each
/// byte is checked individually: `u32::from_str_radix` alone would also
/// accept a leading `+`, which JSON's escape grammar does not.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let mut code = 0u32;
    for &b in hex {
        let digit = match b {
            b'0'..=b'9' => u32::from(b - b'0'),
            b'a'..=b'f' => u32::from(b - b'a') + 10,
            b'A'..=b'F' => u32::from(b - b'A') + 10,
            _ => return Err(format!("invalid \\u escape digit at byte {at}")),
        };
        code = code * 16 + digit;
    }
    Ok(code)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        if (0xDC00..0xE000).contains(&code) {
                            return Err(format!(
                                "lone low surrogate \\u{code:04x} at byte {}",
                                *pos - 1
                            ));
                        }
                        if (0xD800..0xDC00).contains(&code) {
                            // A high surrogate is only valid as the first half
                            // of a `\uD8xx\uDCxx` pair encoding one astral
                            // scalar (UTF-16 in JSON's escape syntax).
                            if bytes.get(*pos + 5) != Some(&b'\\')
                                || bytes.get(*pos + 6) != Some(&b'u')
                            {
                                return Err(format!(
                                    "lone high surrogate \\u{code:04x} at byte {}",
                                    *pos - 1
                                ));
                            }
                            let low = parse_hex4(bytes, *pos + 7)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!(
                                    "high surrogate \\u{code:04x} followed by \
                                     non-low-surrogate \\u{low:04x} at byte {}",
                                    *pos - 1
                                ));
                            }
                            let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(scalar).expect("surrogate pair decodes in-range"),
                            );
                            *pos += 10;
                        } else {
                            out.push(
                                char::from_u32(code).expect("non-surrogate BMP code is a scalar"),
                            );
                            *pos += 4;
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("ω=∞"), "\"ω=∞\"");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(opt_usize(Some(3)), "3");
        assert_eq!(opt_usize(None), "null");
        assert_eq!(opt_bool(Some(true)), "true");
        assert_eq!(opt_bool(None), "null");
    }

    #[test]
    fn parses_roundtrip_of_a_record() {
        let line = format!(
            "{{\"family\":{},\"order\":12,\"margin\":{},\"passive\":{}}}",
            quote("rc_ladder"),
            number(0.5),
            opt_bool(Some(false)),
        );
        let value = parse(&line).unwrap();
        assert_eq!(value.get("family").unwrap().as_str(), Some("rc_ladder"));
        assert_eq!(value.get("order").unwrap().as_f64(), Some(12.0));
        assert_eq!(value.get("passive"), Some(&Value::Bool(false)));
    }

    #[test]
    fn parses_nested_structures_and_escapes() {
        let value =
            parse("{\"a\": [1, 2.5, null, true], \"b\": {\"c\": \"x\\u0041\\n\"}}").unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_str(),
            Some("xA\n")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_one_astral_scalar() {
        // 😀 = U+1F600 = \uD83D\uDE00 in JSON's UTF-16 escape syntax.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"\\uD83D\\uDE00!\"").unwrap().as_str(), Some("😀!"));
        // 𝄞 = U+1D11E.
        assert_eq!(parse("\"\\uD834\\uDD1E\"").unwrap().as_str(), Some("𝄞"));
        // BMP escapes still work, including the surrogate-adjacent boundaries.
        assert_eq!(
            parse("\"\\ud7ff\\ue000\"").unwrap().as_str(),
            Some("\u{d7ff}\u{e000}")
        );
    }

    #[test]
    fn lone_surrogates_are_errors_not_replacement_chars() {
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ud83d rest\"").is_err());
        assert!(parse("\"\\ude00\"").is_err());
        assert!(parse("\"\\ud83d\\u0041\"").is_err());
        assert!(parse("\"\\ud83d\\\"").is_err());
    }

    #[test]
    fn unicode_escape_digits_are_strict_hex() {
        // from_str_radix would accept a sign here; the escape grammar must not.
        assert!(parse("\"\\u+041\"").is_err());
        assert!(parse("\"\\u00 1\"").is_err());
        assert!(parse("\"\\u00g1\"").is_err());
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert_eq!(parse("\"\\uFFFD\"").unwrap().as_str(), Some("\u{fffd}"));
    }

    #[test]
    fn number_grammar_is_enforced() {
        for valid in ["0", "-0", "1", "-1.5", "0.5", "12.25e-3", "1E+9", "9e0"] {
            assert!(parse(valid).is_ok(), "{valid} should parse");
        }
        for invalid in [
            "+1", "1.", ".5", "01", "-", "1e", "1e+", "0x1", "--1", "1.e3",
        ] {
            assert!(parse(invalid).is_err(), "{invalid} should be rejected");
        }
    }

    #[test]
    fn as_bool_accessor() {
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse("1").unwrap().as_bool(), None);
    }
}
