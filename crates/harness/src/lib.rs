//! # ds-harness
//!
//! A deterministic, sharded, multi-threaded sweep engine for the passivity
//! suite: it fans a scenario matrix (circuit family × order × seed × method)
//! across a `std::thread` worker pool with work stealing via a shared atomic
//! cursor, streams the results into JSONL + CSV artifacts (hand-rolled
//! serialization — the build environment has no registry access), and
//! aggregates per-family verdict/timing summaries.
//!
//! The paper's Table 1 / Figure 2 binaries in `ds-bench` run on top of this
//! engine, so the paper artifacts and the production-scale sweeps share one
//! code path.
//!
//! For 10⁵-scenario ensembles the [`store`] module adds the second level of
//! parallelism: deterministic `--shard i/m` task partitioning across
//! independent processes, fingerprint-keyed resume, and a persistent
//! append-only segment store whose merged artifact is byte-identical to the
//! single-process run.
//!
//! ## Determinism
//!
//! Every record carries its task index and only deterministic fields enter
//! the JSONL artifact, so the sorted JSONL output of a sweep is byte-identical
//! whether it ran on 1 thread or N — pinned by the workspace determinism test
//! and by the golden-verdict conformance suite
//! (`tests/golden/verdicts.json`, regenerable with
//! `cargo run -p ds-harness --bin regen-golden`).
//!
//! ## Quick start
//!
//! ```
//! use ds_harness::prelude::*;
//!
//! let scenarios = vec![
//!     Scenario::new(FamilyKind::RcLadder, 4),
//!     Scenario::new(FamilyKind::PerturbedBoundary, 5).with_margin(0.5),
//! ];
//! let tasks = scenario_matrix(&scenarios, &[Method::Proposed, Method::Weierstrass]);
//! let result = run_sweep(&SweepSpec::new(tasks, 2));
//! assert_eq!(result.records.len(), 4);
//! assert!(result.records.iter().all(|r| r.agrees == Some(true)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod golden;
pub mod json;
pub mod method;
pub mod reduce;
pub mod scenario;
pub mod store;
pub mod sweep;
pub mod sync;

pub use artifacts::{
    render_csv, render_jsonl, render_segment_jsonl, validate_csv, validate_jsonl, SweepSummary,
};
pub use method::{run_method, Method, LMI_MAX_ORDER};
pub use reduce::{build_reduced, reduce_netlist, ReductionStats};
pub use scenario::{
    deck_scenarios_from_dir, deck_seed, scenario_matrix, DeckSpec, FamilyKind, Scenario,
    ScenarioKey, SweepTask,
};
pub use store::{record_fingerprint, shard_tasks, task_fingerprint, ResultStore};
pub use sweep::{
    run_single, run_sweep, run_sweep_with_progress, SweepRecord, SweepResult, SweepSpec,
};
pub use sync::{lock_infallible, wait_timeout_infallible};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::artifacts::{render_csv, render_jsonl, SweepSummary};
    pub use crate::method::{run_method, Method, LMI_MAX_ORDER};
    pub use crate::reduce::{build_reduced, reduce_netlist, ReductionStats};
    pub use crate::scenario::{
        deck_scenarios_from_dir, quick_scenarios, scenario_matrix, standard_scenarios,
        standard_tasks, DeckSpec, FamilyKind, Scenario, ScenarioKey, SweepTask,
    };
    pub use crate::store::{record_fingerprint, shard_tasks, task_fingerprint, ResultStore};
    pub use crate::sweep::{
        run_single, run_sweep, run_sweep_with_progress, SweepRecord, SweepResult, SweepSpec,
    };
}
