//! `ds-sweep`: the parallel sweep driver.
//!
//! ```console
//! $ cargo run -p ds-harness --release --bin ds-sweep -- \
//!       --preset standard --threads 4 --out-dir target/sweep
//! ```
//!
//! Options:
//!
//! * `--preset quick|golden|standard` — scenario ensemble (default `standard`);
//! * `--tasks N` — grow the standard preset until the matrix has ≥ N tasks;
//! * `--threads N` — worker-pool size (default: available parallelism);
//! * `--out-dir PATH` — artifact directory (default `target/sweep`);
//! * `--stream` — print each record's JSONL line to stdout as it completes
//!   (completion order; the on-disk artifact stays sorted by task id);
//! * `--no-violations` — skip the deterministic Popov-grid sampling;
//! * `--compare-single-thread` — rerun the same matrix on 1 thread and print
//!   the wall-clock speedup.
//!
//! The binary self-validates the artifacts it wrote (JSONL and CSV are parsed
//! back with the in-tree parsers) and exits non-zero on any error.

use ds_harness::artifacts::{self, SweepSummary};
use ds_harness::golden;
use ds_harness::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Mutex;

struct Args {
    preset: String,
    tasks_target: Option<usize>,
    threads: usize,
    out_dir: PathBuf,
    stream: bool,
    sample_violations: bool,
    compare_single_thread: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        preset: "standard".to_string(),
        tasks_target: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        out_dir: PathBuf::from("target/sweep"),
        stream: false,
        sample_violations: true,
        compare_single_thread: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--preset" => args.preset = value("--preset")?,
            "--tasks" => {
                args.tasks_target = Some(
                    value("--tasks")?
                        .parse()
                        .map_err(|e| format!("--tasks: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--stream" => args.stream = true,
            "--no-violations" => args.sample_violations = false,
            "--compare-single-thread" => args.compare_single_thread = true,
            "--quick" => args.preset = "quick".to_string(),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn build_tasks(args: &Args) -> Result<Vec<SweepTask>, String> {
    let methods = [Method::Proposed, Method::Weierstrass, Method::Lmi];
    match args.preset.as_str() {
        "quick" => Ok(scenario_matrix(
            &quick_scenarios(),
            &[Method::Proposed, Method::Weierstrass],
        )),
        "golden" => Ok(golden::golden_tasks()),
        "standard" => Ok(match args.tasks_target {
            Some(target) => standard_tasks(target),
            None => scenario_matrix(&standard_scenarios(2), &methods),
        }),
        other => Err(format!("unknown preset: {other}")),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let tasks = build_tasks(&args)?;
    eprintln!(
        "# ds-sweep: preset={} tasks={} threads={}",
        args.preset,
        tasks.len(),
        args.threads
    );

    let stdout = Mutex::new(std::io::stdout());
    let stream_cb = |record: &SweepRecord| {
        let line = artifacts::jsonl_line(record);
        let mut out = stdout.lock().unwrap();
        let _ = writeln!(out, "{line}");
    };
    let spec = SweepSpec {
        tasks: tasks.clone(),
        threads: args.threads,
        sample_violations: args.sample_violations,
    };
    let result = run_sweep_with_progress(&spec, if args.stream { Some(&stream_cb) } else { None });

    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| format!("creating {}: {e}", args.out_dir.display()))?;
    let jsonl_path = args.out_dir.join("sweep.jsonl");
    let csv_path = args.out_dir.join("sweep.csv");
    let summary_path = args.out_dir.join("summary.txt");

    let jsonl = ds_harness::render_jsonl(&result.records);
    let csv = ds_harness::render_csv(&result.records);
    std::fs::write(&jsonl_path, &jsonl)
        .map_err(|e| format!("writing {}: {e}", jsonl_path.display()))?;
    std::fs::write(&csv_path, &csv).map_err(|e| format!("writing {}: {e}", csv_path.display()))?;

    // Self-validation: read the artifacts back and parse them.
    let jsonl_back = std::fs::read_to_string(&jsonl_path)
        .map_err(|e| format!("reading back {}: {e}", jsonl_path.display()))?;
    let jsonl_records = ds_harness::validate_jsonl(&jsonl_back)
        .map_err(|e| format!("JSONL artifact invalid: {e}"))?;
    let csv_back = std::fs::read_to_string(&csv_path)
        .map_err(|e| format!("reading back {}: {e}", csv_path.display()))?;
    let csv_records =
        ds_harness::validate_csv(&csv_back).map_err(|e| format!("CSV artifact invalid: {e}"))?;
    if jsonl_records != result.records.len() || csv_records != result.records.len() {
        return Err(format!(
            "artifact record counts diverge: jsonl={jsonl_records} csv={csv_records} expected={}",
            result.records.len()
        ));
    }

    let summary = SweepSummary::from_result(&result);
    let mut summary_text = summary.render();

    if args.compare_single_thread {
        eprintln!("# rerunning on 1 thread for the speedup comparison…");
        let single = run_sweep(&SweepSpec {
            tasks,
            threads: 1,
            sample_violations: args.sample_violations,
        });
        summary_text.push_str(&artifacts::render_speedup(&single, &result));
        summary_text.push('\n');
    }

    std::fs::write(&summary_path, &summary_text)
        .map_err(|e| format!("writing {}: {e}", summary_path.display()))?;
    print!("{summary_text}");
    println!(
        "# artifacts validated: {} ({} records), {} ({} records)",
        jsonl_path.display(),
        jsonl_records,
        csv_path.display(),
        csv_records
    );
    if summary.total_errors > 0 {
        return Err(format!("{} tasks errored", summary.total_errors));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ds-sweep: {e}");
            ExitCode::FAILURE
        }
    }
}
