//! `regen-golden`: regenerates the golden-verdict conformance fixture at
//! `tests/golden/verdicts.json` (workspace root).
//!
//! ```console
//! $ cargo run -p ds-harness --bin regen-golden
//! ```
//!
//! The sweep runs on 2 threads on purpose: the fixture must not depend on the
//! shard order, and regenerating it through the parallel path exercises that
//! guarantee every time.

use ds_harness::golden;
use ds_harness::sweep::{run_sweep, SweepSpec};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let tasks = golden::golden_tasks();
    let count = tasks.len();
    let result = run_sweep(&SweepSpec::new(tasks, 2));
    let rendered = golden::render_golden(&result.records);

    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/verdicts.json");
    if let Some(parent) = fixture.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("regen-golden: creating {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&fixture, &rendered) {
        eprintln!("regen-golden: writing {}: {e}", fixture.display());
        return ExitCode::FAILURE;
    }
    let mismatches = result
        .records
        .iter()
        .filter(|r| r.agrees == Some(false))
        .count();
    println!(
        "regen-golden: wrote {count} cells to {} ({} ground-truth mismatches)",
        fixture.display(),
        mismatches
    );
    ExitCode::SUCCESS
}
