//! The passivity-test methods the harness can dispatch to.
//!
//! This used to live in `ds-bench`; it moved here so the benchmark binaries
//! and the sweep engine share one dispatch point (`ds-bench` re-exports it).

use ds_circuits::generators::CircuitModel;
use ds_lmi::positive_real_lmi::LmiOptions;
use ds_passivity::fast::{check_passivity, FastTestOptions};
use ds_passivity::lmi_test::{check_passivity_lmi, LmiTestOptions};
use ds_passivity::weierstrass_test::{check_passivity_weierstrass, WeierstrassTestOptions};
use ds_passivity::{PassivityError, PassivityReport};

/// Orders at which the LMI baseline is still practical; the paper reports the
/// LMI test failing for orders of 70 and above ("NIL" due to memory), and the
/// first-order solver used here becomes similarly impractical.
pub const LMI_MAX_ORDER: usize = 60;

/// Which passivity test to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's proposed SHH-pencil test.
    Proposed,
    /// The Weierstrass-decomposition baseline.
    Weierstrass,
    /// The extended-LMI baseline.
    Lmi,
}

impl Method {
    /// All methods, in the order the paper's tables report them.
    pub const ALL: [Method; 3] = [Method::Proposed, Method::Weierstrass, Method::Lmi];

    /// Human-readable name used in tables and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Method::Proposed => "proposed",
            Method::Weierstrass => "weierstrass",
            Method::Lmi => "lmi",
        }
    }

    /// Parses a method name as used by the CLI binaries.
    pub fn parse(name: &str) -> Option<Method> {
        match name {
            "proposed" | "shh" | "fast" => Some(Method::Proposed),
            "weierstrass" | "wst" => Some(Method::Weierstrass),
            "lmi" => Some(Method::Lmi),
            _ => None,
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs one passivity test on a model and returns the report.
///
/// # Errors
///
/// Propagates structural test failures.
pub fn run_method(method: Method, model: &CircuitModel) -> Result<PassivityReport, PassivityError> {
    match method {
        Method::Proposed => check_passivity(&model.system, &FastTestOptions::default()),
        Method::Weierstrass => {
            check_passivity_weierstrass(&model.system, &WeierstrassTestOptions::default())
        }
        Method::Lmi => check_passivity_lmi(
            &model.system,
            &LmiTestOptions {
                lmi: LmiOptions::default(),
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_circuits::generators;

    #[test]
    fn names_and_parsing_roundtrip() {
        for method in Method::ALL {
            assert_eq!(Method::parse(method.name()), Some(method));
        }
        assert_eq!(Method::parse("shh"), Some(Method::Proposed));
        assert_eq!(Method::parse("wst"), Some(Method::Weierstrass));
        assert_eq!(Method::parse("nope"), None);
        assert_eq!(Method::Proposed.to_string(), "proposed");
    }

    #[test]
    fn dispatches_all_methods_on_a_small_model() {
        let model = generators::rlc_ladder_with_impulsive(12).unwrap();
        for method in Method::ALL {
            let report = run_method(method, &model).unwrap();
            assert!(
                report.verdict.is_passive(),
                "{method} rejected a passive model: {}",
                report.verdict
            );
        }
    }
}
