//! Structure-preserving reductions of the Φ-system (paper eqs. (11)–(20)).
//!
//! Three stages, each one an explicit `(E, A, B, C, D)` quintuple so that the
//! transfer function can be tracked across the flow:
//!
//! 1. [`cancel_impulsive_modes`] — find the impulse-unobservable directions
//!    `Z₀` of `Φ(s)` (eq. (11)), pair them with their impulse-uncontrollable
//!    duals `−J Z₀` (eq. (12)), and project both out with orthogonal
//!    projections (eqs. (13)–(17)).  The result is a skew-symmetric/symmetric
//!    pencil.
//! 2. [`remove_nondynamic_modes`] — eliminate the algebraic (nondynamic)
//!    states by a Schur complement on the nonsingular `A₂₂` block
//!    (eqs. (18)–(19)).
//! 3. [`restore_shh`] — premultiply by `−J` to restore a
//!    skew-Hamiltonian/Hamiltonian pencil with nonsingular `E` (eq. (20)).

use crate::error::PassivityError;
use ds_descriptor::{transform, DescriptorSystem};
use ds_linalg::decomp::lu;
use ds_linalg::{subspace, Matrix};
use ds_shh::pencil::PhiSystem;
use ds_shh::structure;

/// Result of the impulse-mode cancellation (stage 1).
#[derive(Debug, Clone)]
pub struct ImpulseCancellation {
    /// The reduced Φ-system; its `(E, A)` is a skew-symmetric/symmetric pencil.
    pub reduced: DescriptorSystem,
    /// Dimension of the impulse-unobservable subspace `Z₀`.
    pub unobservable_directions: usize,
    /// Number of states removed (`2n − order(reduced)`).
    pub removed_states: usize,
}

/// Finds the impulse-unobservable directions of the Φ-system and removes them
/// together with their impulse-uncontrollable duals.
///
/// # Errors
///
/// Returns [`PassivityError::ReductionBreakdown`] when the subspace geometry is
/// inconsistent (a symptom of severe ill-conditioning) and propagates numerical
/// failures.
pub fn cancel_impulsive_modes(
    phi: &PhiSystem,
    rel_tol: f64,
) -> Result<ImpulseCancellation, PassivityError> {
    let sys = &phi.system;
    let order = sys.order();
    let tol = rel_tol.max(1e-12);

    // One SVD of E_Φ yields both its numerical rank (kernel dimension) and an
    // orthonormal basis of its range.
    let e_svd = ds_linalg::decomp::svd::svd(sys.e())?;
    let rank_e = e_svd.rank(tol);
    let kernel_dim = order - rank_e;

    // Impulse-unobservable directions (paper eq. (11) / Section 2.5 item 3):
    // Z₀ spans { v : E_Φ v = 0,  A_Φ v ∈ range(E_Φ),  C_Φ v = 0 },
    // computed as the kernel of [E_Φ; P⊥ A_Φ; C_Φ] where P⊥ projects onto the
    // orthogonal complement of range(E_Φ).
    let z0 = if kernel_dim == 0 {
        Matrix::zeros(order, 0)
    } else {
        // Every impulse-unobservable direction satisfies E_Φ v = 0, so it lies
        // in ker(E_Φ) — spanned by the trailing right singular vectors K that
        // the SVD above already delivers. Restricting the stacked operator
        // [E_Φ; P⊥ A_Φ; C_Φ] to K shrinks the null-space factorization from
        // (2·order + p) × order down to (2·order + p) × k with k = dim ker E_Φ
        // (typically ≪ order), which was the dominant cost of this stage.
        let range_e = e_svd.u.block(0, order, 0, rank_e);
        let kernel = e_svd.v.block(0, order, rank_e, order);
        let e_k = sys.e().matmul(&kernel)?;
        let a_k = sys.a().matmul(&kernel)?;
        let proj_a_k = &a_k - &range_e.matmul(&range_e.transpose_matmul(&a_k)?)?;
        let c_k = sys.c().matmul(&kernel)?;
        let stacked = Matrix::vstack(&[&e_k, &proj_a_k, &c_k]);
        // The rank decision must be made at the scale of the *unrestricted*
        // stacked operator (what the full null space used), not of the thin
        // restriction, whose largest singular value can be much smaller.
        let small = ds_linalg::decomp::svd::svd(&stacked)?;
        let scale_ref = e_svd
            .s
            .first()
            .copied()
            .unwrap_or(0.0)
            .max(sys.a().norm_fro())
            .max(sys.c().norm_fro())
            .max(small.s.first().copied().unwrap_or(0.0));
        let threshold = tol * scale_ref;
        let null_cols: Vec<usize> = (0..kernel.cols())
            .filter(|&j| small.s.get(j).copied().unwrap_or(0.0) <= threshold)
            .collect();
        let w = Matrix::from_fn(kernel.cols(), null_cols.len(), |i, j| {
            small.v[(i, null_cols[j])]
        });
        kernel.matmul(&w)?
    };

    if z0.cols() == 0 {
        // Nothing to cancel; still convert the SHH pencil into the
        // skew-symmetric/symmetric form expected downstream by applying the
        // trivial projection with Z_c0 = I and left projector −J.
        let identity = Matrix::identity(order);
        let left = structure::j_mul(&identity)
            .map_err(PassivityError::Shh)?
            .scale(-1.0);
        let reduced = transform::project(sys, &left, &identity)?;
        return Ok(ImpulseCancellation {
            reduced,
            unobservable_directions: 0,
            removed_states: 0,
        });
    }

    // Q₀ spans A_Φ Z₀; its orthogonal complement is Q̄₀ (paper eq. (14)).
    let a_z0 = sys.a().matmul(&z0)?;
    let q0 = subspace::range_basis(&a_z0, tol)?;
    let q0_bar = subspace::complement(&q0, order)?;
    // The right projection basis is J Q̄₀ with the unobservable directions Z₀
    // subtracted (paper eq. (16) guarantees Z₀ ⊆ span(J Q̄₀)).
    let j_q0_bar = structure::j_mul(&q0_bar).map_err(PassivityError::Shh)?;
    let zc0 = subspace::subtract(&j_q0_bar, &z0, tol)?;
    // Left projector −J Z_c0 (paper eq. (17)).
    let left = structure::j_mul(&zc0)
        .map_err(PassivityError::Shh)?
        .scale(-1.0);

    let expected = order.checked_sub(2 * z0.cols()).ok_or_else(|| {
        PassivityError::breakdown("impulse cancellation removed more states than available")
    })?;
    if zc0.cols() != expected {
        return Err(PassivityError::breakdown(format!(
            "impulse cancellation produced a subspace of dimension {} (expected {expected}); \
             the unobservable directions are not contained in span(J Q̄0)",
            zc0.cols()
        )));
    }

    let reduced = transform::project(sys, &left, &zc0)?;
    Ok(ImpulseCancellation {
        reduced,
        unobservable_directions: z0.cols(),
        removed_states: order - zc0.cols(),
    })
}

/// Result of the nondynamic-mode removal (stage 2).
#[derive(Debug, Clone)]
pub struct NondynamicRemoval {
    /// The reduced system; `E` is skew-symmetric and nonsingular, `A` is
    /// symmetric, `B = −Cᵀ` and `D` is symmetric.  Only meaningful when
    /// [`NondynamicRemoval::impulse_free`] is `true`.
    pub reduced: DescriptorSystem,
    /// Number of algebraic states eliminated.
    pub removed_states: usize,
    /// `true` when the `A₂₂` block was nonsingular, i.e. the input pencil was
    /// impulse-free (paper Section 2.5, item 5).  When `false` the original
    /// system cannot be passive: `Φ` retained observable/controllable
    /// impulsive modes.
    pub impulse_free: bool,
}

/// Eliminates the nondynamic (algebraic) states of a skew-symmetric/symmetric
/// reduced Φ-system by a Schur complement on `A₂₂` (paper eqs. (18)–(19)).
///
/// A singular `A₂₂` (the reduced Φ is not impulse-free) is not an error: it is
/// reported through [`NondynamicRemoval::impulse_free`], in which case
/// `reduced` is the unmodified input.
///
/// # Errors
///
/// Propagates numerical failures.
pub fn remove_nondynamic_modes(
    sys: &DescriptorSystem,
    rel_tol: f64,
) -> Result<NondynamicRemoval, PassivityError> {
    let order = sys.order();
    let tol = rel_tol.max(1e-12);
    if order == 0 {
        return Ok(NondynamicRemoval {
            reduced: sys.clone(),
            removed_states: 0,
            impulse_free: true,
        });
    }
    let e_svd = ds_linalg::decomp::svd::svd(sys.e())?;
    let rank_e = e_svd.rank(tol);
    let k = order - rank_e;
    if k == 0 {
        return Ok(NondynamicRemoval {
            reduced: sys.clone(),
            removed_states: 0,
            impulse_free: true,
        });
    }
    // Orthogonal U whose leading columns span range(E) and trailing columns
    // span ker(E); for a skew-symmetric E these are exact orthogonal
    // complements.  The kernel basis comes straight from the SVD's right
    // factor (k orthonormal columns, k = dim ker E ≪ order), so completing
    // *it* costs O(order²·k) — against the O(order³) of re-orthonormalizing
    // and completing the (order − k)-column range basis.
    let kernel = e_svd.v.block(0, order, rank_e, order);
    let range = subspace::complement(&kernel, order)?;
    if range.cols() != rank_e {
        return Err(PassivityError::breakdown(format!(
            "kernel complement of E has dimension {} (expected {rank_e})",
            range.cols()
        )));
    }
    let u = Matrix::hstack(&[&range, &kernel]);
    let rotated = transform::restricted_equivalence(sys, &u, &u)?;

    let r = rank_e;
    let e11 = rotated.e().block(0, r, 0, r);
    let a11 = rotated.a().block(0, r, 0, r);
    let a12 = rotated.a().block(0, r, r, order);
    let a21 = rotated.a().block(r, order, 0, r);
    let a22 = rotated.a().block(r, order, r, order);
    let b1 = rotated.b().block(0, r, 0, rotated.num_inputs());
    let b2 = rotated.b().block(r, order, 0, rotated.num_inputs());
    let c1 = rotated.c().block(0, rotated.num_outputs(), 0, r);
    let c2 = rotated.c().block(0, rotated.num_outputs(), r, order);

    // Impulse-freeness ⇔ A₂₂ nonsingular; decide with an SVD-based rank check
    // (more robust than the LU pivot) and then factor for the Schur complement.
    if subspace::rank(&a22, tol)? < k {
        return Ok(NondynamicRemoval {
            reduced: sys.clone(),
            removed_states: 0,
            impulse_free: false,
        });
    }
    let a22_factor = lu::factor(&a22)?;
    if a22_factor.singular {
        return Ok(NondynamicRemoval {
            reduced: sys.clone(),
            removed_states: 0,
            impulse_free: false,
        });
    }
    let a22_inv_a21 = a22_factor.solve(&a21)?;
    let a22_inv_b2 = a22_factor.solve(&b2)?;

    let a_new = &a11 - &a12.matmul(&a22_inv_a21)?;
    let b_new = &b1 - &a12.matmul(&a22_inv_b2)?;
    let c_new = &c1 - &c2.matmul(&a22_inv_a21)?;
    let d_new = sys.d() - &c2.matmul(&a22_inv_b2)?;

    let reduced = DescriptorSystem::new(e11, a_new, b_new, c_new, d_new)?;
    Ok(NondynamicRemoval {
        reduced,
        removed_states: k,
        impulse_free: true,
    })
}

/// Result of restoring the SHH structure (stage 3).
#[derive(Debug, Clone)]
pub struct ShhRestoration {
    /// The restored system: `E` skew-Hamiltonian and nonsingular, `A`
    /// Hamiltonian, `B = J Cᵀ`, `D` symmetric.
    pub system: DescriptorSystem,
    /// Half dimension `n_p` of the restored pencil.
    pub half: usize,
}

/// Premultiplies the proper skew-symmetric/symmetric pencil by `−J` to restore
/// a skew-Hamiltonian/Hamiltonian pencil (paper eq. (20)).
///
/// # Errors
///
/// Returns [`PassivityError::ReductionBreakdown`] for odd dimensions (which
/// cannot occur for genuine Φ-reductions) and propagates numerical failures.
pub fn restore_shh(sys: &DescriptorSystem) -> Result<ShhRestoration, PassivityError> {
    let order = sys.order();
    if !order.is_multiple_of(2) {
        return Err(PassivityError::breakdown(format!(
            "cannot restore SHH structure on an odd-dimensional system (order {order})"
        )));
    }
    if order == 0 {
        return Ok(ShhRestoration {
            system: sys.clone(),
            half: 0,
        });
    }
    let e3 = structure::jt_mul(sys.e()).map_err(PassivityError::Shh)?;
    let a3 = structure::jt_mul(sys.a()).map_err(PassivityError::Shh)?;
    let b3 = structure::jt_mul(sys.b()).map_err(PassivityError::Shh)?;
    let system = DescriptorSystem::new(e3, a3, b3, sys.c().clone(), sys.d().clone())?;
    Ok(ShhRestoration {
        system,
        half: order / 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::transfer;
    use ds_shh::pencil::build_phi;

    /// G(s) = R + sL: a passive impulsive system whose Φ is the constant 2R.
    fn series_rl(r: f64, l: f64) -> DescriptorSystem {
        let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-l, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, r)).unwrap()
    }

    /// G(s) = 0.5 + 1/(s+1) with a nondynamic algebraic state.
    fn proper_rc() -> DescriptorSystem {
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.5]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 0.25)).unwrap()
    }

    #[test]
    fn impulse_cancellation_on_series_rl_removes_the_impulsive_pair() {
        let phi = build_phi(&series_rl(2.0, 3.0)).unwrap();
        let cancelled = cancel_impulsive_modes(&phi, 1e-10).unwrap();
        assert_eq!(cancelled.unobservable_directions, 1);
        assert_eq!(cancelled.removed_states, 2);
        assert_eq!(cancelled.reduced.order(), 2);
        // Φ(s) = 2R = 4 is preserved (the leftover states are nondynamic).
        for &w in &[0.0, 1.0, 100.0] {
            let value = transfer::evaluate_jomega(&cancelled.reduced, w).unwrap();
            assert!((value.re[(0, 0)] - 4.0).abs() < 1e-9);
            assert!(value.im[(0, 0)].abs() < 1e-9);
        }
        // After removing the nondynamic leftovers nothing remains.
        let removed = remove_nondynamic_modes(&cancelled.reduced, 1e-10).unwrap();
        assert_eq!(removed.reduced.order(), 0);
        assert!((removed.reduced.d()[(0, 0)] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn impulse_cancellation_on_proper_system_removes_nothing() {
        let phi = build_phi(&proper_rc()).unwrap();
        let cancelled = cancel_impulsive_modes(&phi, 1e-10).unwrap();
        assert_eq!(cancelled.unobservable_directions, 0);
        assert_eq!(cancelled.removed_states, 0);
        assert_eq!(cancelled.reduced.order(), 4);
        // The output is always in skew-symmetric/symmetric form.
        assert!(cancelled.reduced.e().is_skew_symmetric(1e-12));
        assert!(cancelled.reduced.a().is_symmetric(1e-12));
    }

    #[test]
    fn impulse_cancellation_preserves_transfer_function() {
        // Passive system with both a proper part and an impulsive part:
        // G(s) = 0.5 + 1/(s+1) + 3s (parallel sum of the two fixtures).
        let sys = proper_rc().parallel_sum(&series_rl(0.0, 3.0)).unwrap();
        let phi = build_phi(&sys).unwrap();
        let cancelled = cancel_impulsive_modes(&phi, 1e-10).unwrap();
        assert!(cancelled.removed_states > 0);
        // The reduced Φ still equals G + G~ on the imaginary axis.
        for &w in &[0.1, 1.0, 10.0] {
            let expected = transfer::evaluate_jomega(&phi.system, w).unwrap();
            let got = transfer::evaluate_jomega(&cancelled.reduced, w).unwrap();
            assert!(
                expected.sub(&got).norm_max() < 1e-8,
                "transfer function changed at ω = {w}"
            );
        }
        // The reduced pencil is skew-symmetric/symmetric.
        assert!(cancelled.reduced.e().is_skew_symmetric(1e-9));
        assert!(cancelled.reduced.a().is_symmetric(1e-9));
    }

    #[test]
    fn nondynamic_removal_keeps_transfer_and_kills_kernel() {
        let sys = proper_rc();
        let phi = build_phi(&sys).unwrap();
        let cancelled = cancel_impulsive_modes(&phi, 1e-10).unwrap();
        let removed = remove_nondynamic_modes(&cancelled.reduced, 1e-10).unwrap();
        assert_eq!(removed.removed_states, 2);
        assert_eq!(removed.reduced.order(), 2);
        assert_eq!(
            subspace::rank(removed.reduced.e(), 1e-12).unwrap(),
            removed.reduced.order()
        );
        for &w in &[0.0, 0.5, 5.0] {
            let expected = transfer::evaluate_jomega(&phi.system, w).unwrap();
            let got = transfer::evaluate_jomega(&removed.reduced, w).unwrap();
            assert!(expected.sub(&got).norm_max() < 1e-9);
        }
    }

    #[test]
    fn nondynamic_removal_detects_non_impulse_free_input() {
        // A skew-symmetric/symmetric pencil with singular A22: take E with a
        // 2-dimensional kernel but A22 = 0 in that corner.
        let e = Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[-1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
        ]);
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
        ]);
        let sys = DescriptorSystem::new(
            e,
            a.symmetric_part(),
            Matrix::zeros(4, 1),
            Matrix::zeros(1, 4),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let result = remove_nondynamic_modes(&sys, 1e-10).unwrap();
        assert!(!result.impulse_free);
        assert_eq!(result.removed_states, 0);
    }

    #[test]
    fn restore_shh_gives_structured_pencil() {
        // Start from a proper RC system, run the J-conversion round trip.
        let sys = proper_rc();
        let phi = build_phi(&sys).unwrap();
        let identity = Matrix::identity(4);
        let j = ds_shh::structure::j_matrix(2);
        let skew_sym =
            transform::project(&phi.system, &(&j * &identity).scale(-1.0), &identity).unwrap();
        let removed = remove_nondynamic_modes(&skew_sym, 1e-10).unwrap();
        let restored = restore_shh(&removed.reduced).unwrap();
        assert_eq!(restored.half, 1);
        let scale = restored.system.scale();
        assert!(structure::is_skew_hamiltonian(restored.system.e(), 1e-9 * scale).unwrap());
        assert!(structure::is_hamiltonian(restored.system.a(), 1e-9 * scale).unwrap());
        // E must be nonsingular.
        assert_eq!(
            subspace::rank(restored.system.e(), 1e-12).unwrap(),
            restored.system.order()
        );
        // Transfer function still intact.
        for &w in &[0.3, 3.0] {
            let expected = transfer::evaluate_jomega(&phi.system, w).unwrap();
            let got = transfer::evaluate_jomega(&restored.system, w).unwrap();
            assert!(expected.sub(&got).norm_max() < 1e-9);
        }
    }

    #[test]
    fn restore_shh_rejects_odd_dimension() {
        let sys = DescriptorSystem::new(
            Matrix::identity(3),
            Matrix::identity(3),
            Matrix::zeros(3, 1),
            Matrix::zeros(1, 3),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(restore_shh(&sys).is_err());
    }

    #[test]
    fn empty_system_passes_through_every_stage() {
        let empty = DescriptorSystem::new(
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 1),
            Matrix::zeros(1, 0),
            Matrix::filled(1, 1, 4.0),
        )
        .unwrap();
        let removed = remove_nondynamic_modes(&empty, 1e-10).unwrap();
        assert_eq!(removed.removed_states, 0);
        let restored = restore_shh(&empty).unwrap();
        assert_eq!(restored.half, 0);
    }
}
