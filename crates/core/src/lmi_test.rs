//! The extended-LMI passivity test (the paper's second baseline).
//!
//! Solves the descriptor-system positive-real LMI of Freund & Jarre (paper
//! eq. (4)) with the generic feasibility solver of
//! [`ds_lmi::positive_real_lmi`].  Feasibility certifies passivity; exhausting
//! the iteration budget with a residual violation is reported as "not passive"
//! (for well-separated instances, which is what the benchmark suite uses, this
//! matches the true verdict).  The point of this baseline in the paper is its
//! cost: a generic LMI solve is orders of magnitude more expensive than the
//! structured O(n³) test and becomes impractical between order 60 and 100.

use crate::error::PassivityError;
use crate::report::{NonPassivityReason, PassivityReport, PassivityVerdict};
use ds_descriptor::DescriptorSystem;
use ds_lmi::positive_real_lmi::{lmi_feasibility, LmiOptions, LmiOutcome};

/// Options for the LMI-baseline passivity test.
#[derive(Debug, Clone, Default)]
pub struct LmiTestOptions {
    /// Options forwarded to the LMI feasibility solver.
    pub lmi: LmiOptions,
}

/// Runs the extended-LMI passivity test.
///
/// # Errors
///
/// Structural failures only; "not passive" (LMI infeasible) is reported through
/// the verdict.
pub fn check_passivity_lmi(
    sys: &DescriptorSystem,
    options: &LmiTestOptions,
) -> Result<PassivityReport, PassivityError> {
    if !sys.is_square_system() {
        return Err(PassivityError::NotSquareSystem {
            inputs: sys.num_inputs(),
            outputs: sys.num_outputs(),
        });
    }
    let outcome = lmi_feasibility(sys, &options.lmi).map_err(PassivityError::Lmi)?;
    let verdict = match outcome {
        LmiOutcome::Feasible { .. } => PassivityVerdict::Passive { strictly: false },
        LmiOutcome::Infeasible { objective, .. } => PassivityVerdict::NotPassive {
            reason: NonPassivityReason::LmiInfeasible { objective },
        },
    };
    Ok(PassivityReport::new("lmi", verdict))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_circuits::generators;
    use ds_linalg::Matrix;

    #[test]
    fn passive_rc_ladder_feasible() {
        let model = generators::rc_ladder(3, 1.0, 1.0).unwrap();
        let report = check_passivity_lmi(&model.system, &LmiTestOptions::default()).unwrap();
        assert!(report.verdict.is_passive(), "{}", report.verdict);
        assert_eq!(report.method, "lmi");
    }

    #[test]
    fn clearly_nonpassive_system_infeasible() {
        // Negative feedthrough makes the (2,2) block of the LMI indefinite for
        // every X.
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::diag(&[-1.0, -1.0]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        let d = Matrix::filled(1, 1, -1.0);
        let sys = DescriptorSystem::new(e, a, b, c, d).unwrap();
        let report = check_passivity_lmi(&sys, &LmiTestOptions::default()).unwrap();
        assert!(!report.verdict.is_passive());
    }

    #[test]
    fn non_square_rejected() {
        let sys = DescriptorSystem::new(
            Matrix::identity(1),
            Matrix::filled(1, 1, -1.0),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::filled(1, 1, 1.0),
            Matrix::from_rows(&[&[0.0, 0.0]]),
        )
        .unwrap();
        assert!(check_passivity_lmi(&sys, &LmiTestOptions::default()).is_err());
    }
}
