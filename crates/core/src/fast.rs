//! The proposed fast descriptor-system passivity test (paper Section 3 and
//! Fig. 1).
//!
//! The flow, mirroring the paper's flowchart:
//!
//! 1. form `Φ(s) = G(s) + G~(s)` as an SHH pencil (eq. (10));
//! 2. remove impulse-unobservable and impulse-uncontrollable modes
//!    (eqs. (11)–(17));
//! 3. if the reduced `Φ` is still not impulse-free ⇒ **not passive**;
//! 4. extract `M₁` from the generalized eigenvector chains (eqs. (24)–(25))
//!    and require `M₁ ⪰ 0`; detect Markov parameters of order ≥ 2 ⇒
//!    **not passive**;
//! 5. remove nondynamic modes (eqs. (18)–(19)), restore the SHH structure
//!    (eq. (20));
//! 6. convert to a regular pencil and split off the stable proper part
//!    (eqs. (21)–(23));
//! 7. test positive realness of the proper part (Hamiltonian eigenvalue test).

use crate::error::PassivityError;
use crate::proper;
use crate::reduction;
use crate::report::{
    NonPassivityReason, PassivityReport, PassivityVerdict, ReductionDiagnostics, StageTimings,
};
use crate::residue;
use ds_descriptor::{poles, transfer, DescriptorSystem};
use ds_linalg::decomp::symmetric;
use ds_linalg::{Complex, Matrix};
use ds_shh::pencil::build_phi;
use ds_shh::positive_real::{self, PositiveRealOptions, PositiveRealVerdict};
use ds_shh::ShhError;
use std::time::Instant;

/// Options for the fast passivity test.
#[derive(Debug, Clone)]
pub struct FastTestOptions {
    /// Relative tolerance for rank decisions and definiteness checks.
    pub rel_tol: f64,
    /// Verify regularity of the pencil `(E, A)` before starting.
    pub check_regularity: bool,
    /// Verify that the finite dynamic modes are stable before starting.
    /// The paper *assumes* stability ("as in the modeling of passive
    /// circuits"); disabling this check reproduces the paper's cost profile
    /// exactly, enabling it adds one Weierstrass-style eigenvalue computation.
    pub check_stability: bool,
    /// Options forwarded to the final positive-realness test.
    pub positive_real: PositiveRealOptions,
    /// Real probe points used by the polynomial-anomaly (Markov ≥ 2) check.
    pub markov_probes: (f64, f64),
}

impl Default for FastTestOptions {
    fn default() -> Self {
        FastTestOptions {
            rel_tol: 1e-9,
            check_regularity: false,
            check_stability: false,
            positive_real: PositiveRealOptions::default(),
            markov_probes: (1.0e4, 3.0e4),
        }
    }
}

impl FastTestOptions {
    /// A stricter configuration that additionally verifies regularity and
    /// stability of the input (at extra O(n³) cost).
    pub fn with_precondition_checks() -> Self {
        FastTestOptions {
            check_regularity: true,
            check_stability: true,
            ..FastTestOptions::default()
        }
    }
}

/// Runs the proposed SHH-based passivity test on a descriptor system.
///
/// # Errors
///
/// Structural failures only (non-square systems, singular pencils, numerical
/// breakdowns); "not passive" is reported through the verdict.
pub fn check_passivity(
    sys: &DescriptorSystem,
    options: &FastTestOptions,
) -> Result<PassivityReport, PassivityError> {
    if !sys.is_square_system() {
        return Err(PassivityError::NotSquareSystem {
            inputs: sys.num_inputs(),
            outputs: sys.num_outputs(),
        });
    }
    let tol = options.rel_tol.max(1e-13);
    let scale = sys.scale();
    let mut timings = StageTimings::default();
    let mut diagnostics = ReductionDiagnostics::default();

    if options.check_regularity && !sys.is_regular(tol)? {
        return Err(PassivityError::SingularPencil);
    }
    if options.check_stability && sys.order() > 0 && !poles::is_stable(sys, 0.0)? {
        let mut report = PassivityReport::new(
            "shh-fast",
            PassivityVerdict::NotPassive {
                reason: NonPassivityReason::UnstableFiniteModes,
            },
        );
        report.timings = timings;
        return Ok(report);
    }

    // Stage 0: Φ(s) = G(s) + G~(s) as an SHH pencil.
    let t = Instant::now();
    let phi = build_phi(sys).map_err(PassivityError::Shh)?;
    timings.build_phi = t.elapsed();
    diagnostics.phi_order = phi.system.order();

    // Stage 1: cancel impulse-unobservable / uncontrollable modes.
    let t = Instant::now();
    let cancelled = reduction::cancel_impulsive_modes(&phi, tol)?;
    timings.impulse_removal = t.elapsed();
    diagnostics.unobservable_impulsive_directions = cancelled.unobservable_directions;
    diagnostics.removed_impulse_states = cancelled.removed_states;

    // Stage 1b: remove the nondynamic modes of Φ₁.  A singular A₂₂ block here
    // means Φ₁ is not impulse-free: the original system retained observable and
    // controllable impulsive modes and cannot be passive.
    let t = Instant::now();
    let nondynamic = reduction::remove_nondynamic_modes(&cancelled.reduced, tol)?;
    timings.nondynamic_removal = t.elapsed();
    if !nondynamic.impulse_free {
        let mut report = PassivityReport::new(
            "shh-fast",
            PassivityVerdict::NotPassive {
                reason: NonPassivityReason::ResidualImpulsiveModes,
            },
        );
        report.diagnostics = diagnostics;
        report.timings = timings;
        return Ok(report);
    }

    // Stage 2: residue extraction and definiteness check.
    let t = Instant::now();
    let extraction = residue::extract_m1(sys, tol)?;
    let m1 = extraction.m1;
    let m1_sym = if m1.rows() > 0 {
        m1.symmetric_part()
    } else {
        m1.clone()
    };
    timings.residue_extraction = t.elapsed();
    if cancelled.removed_states > 0 && m1_sym.rows() > 0 {
        let min_eig = symmetric::min_eigenvalue(&m1_sym)?;
        if min_eig < -tol.max(1e-10) * scale {
            let mut report = PassivityReport::new(
                "shh-fast",
                PassivityVerdict::NotPassive {
                    reason: NonPassivityReason::IndefiniteResidue {
                        min_eigenvalue: min_eig,
                    },
                },
            );
            report.m1 = Some(m1);
            report.diagnostics = diagnostics;
            report.timings = timings;
            return Ok(report);
        }
    }

    // Stage 3: restore the SHH structure of the proper Φ-pencil.
    let restored = reduction::restore_shh(&nondynamic.reduced)?;
    diagnostics.removed_nondynamic_states = nondynamic.removed_states;
    diagnostics.proper_phi_order = restored.system.order();

    // Bookkeeping of the paper's Section 3.4: among the states removed by the
    // impulse cancellation, the grade-2 tops (impulsive modes) must be matched
    // one-for-one by their grade-1 partners; otherwise Markov parameters of
    // order ≥ 2 are present.
    let rank_e = sys.rank_e(tol)?;
    let nondynamic_total_phi = 2 * (sys.order() - rank_e);
    let nondynamic_with_impulsive = nondynamic_total_phi.saturating_sub(nondynamic.removed_states);
    diagnostics.nondynamic_removed_with_impulsive = nondynamic_with_impulsive;
    let impulsive_removed = cancelled
        .removed_states
        .saturating_sub(nondynamic_with_impulsive);
    diagnostics.markov_bookkeeping_consistent = impulsive_removed == nondynamic_with_impulsive;

    // Stage 4: regularize (eq. (21)) and split off the stable proper part
    // (eqs. (22)–(23)).
    let t = Instant::now();
    let regular = proper::regularize(&restored.system, tol)?;
    timings.regularization = t.elapsed();
    let t = Instant::now();
    let stable = match proper::extract_stable_part(&regular, tol) {
        Ok(p) => p,
        Err(PassivityError::Shh(ShhError::ImaginaryAxisEigenvalues)) => {
            // Finite poles of Φ on the imaginary axis violate the paper's
            // standing stability assumption.
            let mut report = PassivityReport::new(
                "shh-fast",
                PassivityVerdict::NotPassive {
                    reason: NonPassivityReason::UnstableFiniteModes,
                },
            );
            report.m1 = Some(m1);
            report.diagnostics = diagnostics;
            report.timings = timings;
            return Ok(report);
        }
        Err(other) => return Err(other),
    };
    timings.spectral_split = t.elapsed();

    // Stage 5: positive realness of the proper part. Its A is the restriction
    // of the Hamiltonian to its stable invariant subspace — Hurwitz by
    // construction — so the tester's stability pre-check (an n × n eigensolve)
    // is skipped.
    let t = Instant::now();
    let pr_options = positive_real::PositiveRealOptions {
        assume_stable: true,
        ..options.positive_real.clone()
    };
    let pr_verdict = positive_real::test_positive_real(&stable.state_space, &pr_options)
        .map_err(PassivityError::Shh)?;
    timings.positive_real_test = t.elapsed();

    // Stage 6: polynomial-anomaly check — Markov parameters of order ≥ 2 (or a
    // skew-symmetric M₁) cancel inside Φ and are invisible to the stages above,
    // but they rule out passivity; detect them by comparing G against
    // G_p + s·M₁ at two large real frequencies.
    let anomaly = polynomial_anomaly(sys, &stable.state_space, &m1_sym, options)?;

    let verdict = if anomaly {
        PassivityVerdict::NotPassive {
            reason: NonPassivityReason::HigherOrderMarkovParameters,
        }
    } else {
        match pr_verdict {
            PositiveRealVerdict::StrictlyPositiveReal => PassivityVerdict::Passive {
                strictly: m1_sym.norm_max() <= tol * scale,
            },
            PositiveRealVerdict::PositiveReal { .. } => {
                PassivityVerdict::Passive { strictly: false }
            }
            PositiveRealVerdict::NotPositiveReal {
                witness_frequency,
                min_eigenvalue,
            } => PassivityVerdict::NotPassive {
                reason: NonPassivityReason::ProperPartNotPositiveReal {
                    witness_frequency,
                    min_eigenvalue,
                },
            },
        }
    };

    let mut report = PassivityReport::new("shh-fast", verdict);
    report.m1 = Some(m1);
    report.proper_part = Some(stable.state_space);
    report.diagnostics = diagnostics;
    report.timings = timings;
    Ok(report)
}

/// Detects polynomial behaviour of `G(s)` beyond `s·M₁` by sampling on the
/// positive real axis.  Returns `true` when an anomaly (⇒ non-passivity) is
/// found.
fn polynomial_anomaly(
    sys: &DescriptorSystem,
    proper_part: &ds_descriptor::StateSpace,
    m1_sym: &Matrix,
    options: &FastTestOptions,
) -> Result<bool, PassivityError> {
    if sys.order() == 0 {
        return Ok(false);
    }
    let (s1, s2) = options.markov_probes;
    let proper_ds = proper_part.to_descriptor();
    let mut skew_samples: Vec<Matrix> = Vec::new();
    for &sigma in &[s1, s2] {
        let g = match transfer::evaluate(sys, Complex::from_real(sigma)) {
            Ok(v) => v,
            Err(ds_descriptor::DescriptorError::SingularPencil) => continue,
            Err(e) => return Err(PassivityError::Descriptor(e)),
        };
        let gp = transfer::evaluate(&proper_ds, Complex::from_real(sigma))
            .map_err(PassivityError::Descriptor)?;
        // Symmetric part must match G_p + σ M₁ (the skew-symmetric constant
        // part of the proper representative is not identifiable from Φ).
        let sym_g = g.re.symmetric_part();
        let sym_model = &gp.re.symmetric_part() + &m1_sym.scale(sigma);
        let reference = sym_g.norm_max().max(1.0);
        if (&sym_g - &sym_model).norm_max() > 1e-5 * reference {
            return Ok(true);
        }
        skew_samples.push(g.re.skew_part());
    }
    // For a passive system the skew-symmetric part of G on the real axis
    // converges to the constant skew(M₀); growth between the two probes
    // indicates skew polynomial terms (e.g. a skew M₂).
    if skew_samples.len() == 2 {
        let drift = (&skew_samples[1] - &skew_samples[0]).norm_max();
        let reference = skew_samples[0].norm_max().max(1.0);
        if drift > 1e-4 * reference.max(m1_sym.norm_max()) {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_circuits::generators;
    use ds_circuits::random::{
        random_nonpassive_descriptor, random_passive_descriptor, RandomPassiveOptions,
    };

    fn opts() -> FastTestOptions {
        FastTestOptions::default()
    }

    fn series_rl(r: f64, l: f64) -> DescriptorSystem {
        let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-l, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, r)).unwrap()
    }

    #[test]
    fn passive_rl_impedance_is_passive_with_m1() {
        let report = check_passivity(&series_rl(2.0, 3.0), &opts()).unwrap();
        assert!(report.verdict.is_passive(), "verdict: {}", report.verdict);
        let m1 = report.m1.unwrap();
        assert!((m1[(0, 0)] - 3.0).abs() < 1e-8);
        assert_eq!(report.diagnostics.removed_impulse_states, 2);
    }

    #[test]
    fn negative_inductance_rejected_through_m1() {
        let report = check_passivity(&series_rl(2.0, -3.0), &opts()).unwrap();
        match report.verdict {
            PassivityVerdict::NotPassive {
                reason: NonPassivityReason::IndefiniteResidue { min_eigenvalue },
            } => assert!(min_eigenvalue < 0.0),
            other => panic!("expected IndefiniteResidue, got {other}"),
        }
    }

    #[test]
    fn passive_rc_ladder_is_passive() {
        let model = generators::rc_ladder(5, 1.0, 1.0).unwrap();
        let report = check_passivity(&model.system, &opts()).unwrap();
        assert!(report.verdict.is_passive(), "verdict: {}", report.verdict);
        // Proper system: M1 = 0 and nothing removed in stage 1.
        assert!(report.m1.unwrap().norm_max() < 1e-9);
        assert_eq!(report.diagnostics.removed_impulse_states, 0);
    }

    #[test]
    fn impulsive_rlc_ladder_is_passive() {
        let model = generators::rlc_ladder_with_impulsive(10).unwrap();
        let report = check_passivity(&model.system, &opts()).unwrap();
        assert!(report.verdict.is_passive(), "verdict: {}", report.verdict);
        let m1 = report.m1.unwrap();
        assert!(m1[(0, 0)] > 0.5, "expected the port inductance in M1");
        assert!(report.diagnostics.removed_impulse_states > 0);
        assert!(report.proper_part.is_some());
    }

    #[test]
    fn nonpassive_ladder_detected() {
        let model = generators::nonpassive_ladder(8).unwrap();
        let report = check_passivity(&model.system, &opts()).unwrap();
        assert!(!report.verdict.is_passive(), "verdict: {}", report.verdict);
    }

    #[test]
    fn negative_m1_model_detected() {
        let model = generators::negative_m1_model(8).unwrap();
        let report = check_passivity(&model.system, &opts()).unwrap();
        assert!(!report.verdict.is_passive());
    }

    #[test]
    fn rc_grid_two_port_is_passive() {
        let model = generators::rc_grid(3, 3).unwrap();
        let report = check_passivity(&model.system, &opts()).unwrap();
        assert!(report.verdict.is_passive(), "verdict: {}", report.verdict);
    }

    #[test]
    fn random_passive_descriptors_pass() {
        for seed in 0..4 {
            let sys = random_passive_descriptor(
                &RandomPassiveOptions {
                    with_impulsive_part: seed % 2 == 0,
                    ..RandomPassiveOptions::default()
                },
                seed,
            )
            .unwrap();
            let report = check_passivity(&sys, &opts()).unwrap();
            assert!(
                report.verdict.is_passive(),
                "seed {seed}: {}",
                report.verdict
            );
        }
    }

    #[test]
    fn random_nonpassive_descriptors_fail() {
        let mut detected = 0;
        for seed in 0..4 {
            let sys = random_nonpassive_descriptor(&RandomPassiveOptions::default(), seed).unwrap();
            let report = check_passivity(&sys, &opts()).unwrap();
            if !report.verdict.is_passive() {
                detected += 1;
            }
        }
        assert!(
            detected >= 3,
            "only {detected}/4 non-passive systems detected"
        );
    }

    #[test]
    fn higher_order_markov_detected() {
        // G(s) = s² L (two chained integrators at infinity): not passive.
        // Realization: E = [[0,1,0],[0,0,1],[0,0,0]], A = I, B = e3, C = [l,0,0].
        let e = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let a = Matrix::identity(3);
        let b = Matrix::column(&[0.0, 0.0, 1.0]);
        let c = Matrix::row_vector(&[-2.0, 0.0, 0.0]);
        let sys = DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 1.0)).unwrap();
        // Sanity: G(σ) grows quadratically.
        let g1 = transfer::evaluate(&sys, Complex::from_real(10.0)).unwrap();
        let g2 = transfer::evaluate(&sys, Complex::from_real(20.0)).unwrap();
        assert!(g2.re[(0, 0)] / g1.re[(0, 0)] > 3.5);
        let report = check_passivity(&sys, &opts()).unwrap();
        assert!(!report.verdict.is_passive());
    }

    #[test]
    fn unstable_system_rejected_when_checked() {
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        let sys = DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 1.0)).unwrap();
        let report = check_passivity(&sys, &FastTestOptions::with_precondition_checks()).unwrap();
        assert_eq!(
            report.verdict,
            PassivityVerdict::NotPassive {
                reason: NonPassivityReason::UnstableFiniteModes
            }
        );
    }

    #[test]
    fn non_square_system_is_an_error() {
        let sys = DescriptorSystem::new(
            Matrix::identity(1),
            Matrix::filled(1, 1, -1.0),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::filled(1, 1, 1.0),
            Matrix::from_rows(&[&[0.0, 0.0]]),
        )
        .unwrap();
        assert!(matches!(
            check_passivity(&sys, &opts()),
            Err(PassivityError::NotSquareSystem { .. })
        ));
    }

    #[test]
    fn report_contains_timings_and_proper_part() {
        let model = generators::rlc_ladder(3, 1.0, 0.2, 1.0).unwrap();
        let report = check_passivity(&model.system, &opts()).unwrap();
        assert!(report.verdict.is_passive());
        assert!(report.timings.total().as_nanos() > 0);
        let proper = report.proper_part.unwrap();
        assert!(proper.is_stable(1e-10).unwrap());
    }
}
