//! The Weierstrass-decomposition passivity test (the paper's first baseline).
//!
//! The conventional route: decompose `G(s)` into its proper part and
//! polynomial (Markov) part first — the paper uses GUPTRI for this, we use the
//! Cayley-shift decomposition of [`ds_descriptor::weierstrass`] — and then test
//! each part separately:
//!
//! * Markov parameters of order ≥ 2 must vanish,
//! * `M₁` must be symmetric positive semidefinite,
//! * the proper part must be stable and positive real.
//!
//! This reproduces the approach the paper benchmarks in Table 1 / Fig. 2 under
//! the name "Weierstrass decomposition"; as the paper notes, it relies on
//! generally non-orthogonal (potentially ill-conditioned) transformations.

use crate::error::PassivityError;
use crate::report::{NonPassivityReason, PassivityReport, PassivityVerdict};
use ds_descriptor::weierstrass::{decompose, WeierstrassOptions};
use ds_descriptor::DescriptorSystem;
use ds_linalg::decomp::symmetric;
use ds_shh::positive_real::{self, PositiveRealOptions, PositiveRealVerdict};

/// Options for the Weierstrass-baseline passivity test.
#[derive(Debug, Clone)]
pub struct WeierstrassTestOptions {
    /// Options forwarded to the Weierstrass decomposition.
    pub decomposition: WeierstrassOptions,
    /// Relative tolerance for definiteness checks.
    pub rel_tol: f64,
    /// Options forwarded to the positive-realness test of the proper part.
    pub positive_real: PositiveRealOptions,
}

impl Default for WeierstrassTestOptions {
    fn default() -> Self {
        WeierstrassTestOptions {
            decomposition: WeierstrassOptions::default(),
            rel_tol: 1e-9,
            positive_real: PositiveRealOptions::default(),
        }
    }
}

/// Runs the Weierstrass-decomposition passivity test.
///
/// # Errors
///
/// Structural failures only (non-square systems, singular pencils, numerical
/// breakdowns); "not passive" is reported through the verdict.
pub fn check_passivity_weierstrass(
    sys: &DescriptorSystem,
    options: &WeierstrassTestOptions,
) -> Result<PassivityReport, PassivityError> {
    if !sys.is_square_system() {
        return Err(PassivityError::NotSquareSystem {
            inputs: sys.num_inputs(),
            outputs: sys.num_outputs(),
        });
    }
    let tol = options.rel_tol.max(1e-13);
    let scale = sys.scale();

    let decomposition = decompose(sys, &options.decomposition)?;

    // Markov parameters of order ≥ 2 rule out passivity immediately.
    if decomposition.polynomial_degree() >= 2 {
        let mut report = PassivityReport::new(
            "weierstrass",
            PassivityVerdict::NotPassive {
                reason: NonPassivityReason::HigherOrderMarkovParameters,
            },
        );
        report.m1 = Some(decomposition.m1(sys.num_outputs(), sys.num_inputs()));
        return Ok(report);
    }

    // M₁ must be PSD (symmetric part; an asymmetric M₁ is also non-passive and
    // shows up as an indefinite symmetric part or via the PR test).
    let m1 = decomposition.m1(sys.num_outputs(), sys.num_inputs());
    if m1.rows() > 0 && m1.norm_max() > 0.0 {
        let skew_norm = m1.skew_part().norm_max();
        let min_eig = symmetric::min_eigenvalue(&m1.symmetric_part())?;
        if min_eig < -tol.max(1e-10) * scale || skew_norm > 1e-7 * scale {
            let mut report = PassivityReport::new(
                "weierstrass",
                PassivityVerdict::NotPassive {
                    reason: NonPassivityReason::IndefiniteResidue {
                        min_eigenvalue: min_eig.min(-skew_norm),
                    },
                },
            );
            report.m1 = Some(m1);
            return Ok(report);
        }
    }

    // Stability of the finite modes.
    let proper = decomposition.proper.clone();
    if proper.order() > 0 && !proper.is_stable(0.0)? {
        let mut report = PassivityReport::new(
            "weierstrass",
            PassivityVerdict::NotPassive {
                reason: NonPassivityReason::UnstableFiniteModes,
            },
        );
        report.m1 = Some(m1);
        report.proper_part = Some(proper);
        return Ok(report);
    }

    // Positive realness of the proper part.
    let verdict = positive_real::test_positive_real(&proper, &options.positive_real)
        .map_err(PassivityError::Shh)?;
    let overall = match verdict {
        PositiveRealVerdict::StrictlyPositiveReal => PassivityVerdict::Passive {
            strictly: m1.norm_max() <= tol * scale,
        },
        PositiveRealVerdict::PositiveReal { .. } => PassivityVerdict::Passive { strictly: false },
        PositiveRealVerdict::NotPositiveReal {
            witness_frequency,
            min_eigenvalue,
        } => PassivityVerdict::NotPassive {
            reason: NonPassivityReason::ProperPartNotPositiveReal {
                witness_frequency,
                min_eigenvalue,
            },
        },
    };
    let mut report = PassivityReport::new("weierstrass", overall);
    report.m1 = Some(m1);
    report.proper_part = Some(proper);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_circuits::generators;
    use ds_linalg::Matrix;

    fn opts() -> WeierstrassTestOptions {
        WeierstrassTestOptions::default()
    }

    fn series_rl(r: f64, l: f64) -> DescriptorSystem {
        let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-l, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, r)).unwrap()
    }

    #[test]
    fn passive_rl_accepted() {
        let report = check_passivity_weierstrass(&series_rl(2.0, 3.0), &opts()).unwrap();
        assert!(report.verdict.is_passive(), "{}", report.verdict);
        assert!((report.m1.unwrap()[(0, 0)] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn negative_inductance_rejected() {
        let report = check_passivity_weierstrass(&series_rl(2.0, -1.0), &opts()).unwrap();
        assert!(!report.verdict.is_passive());
    }

    #[test]
    fn passive_circuits_accepted() {
        for model in [
            generators::rc_ladder(4, 1.0, 1.0).unwrap(),
            generators::rlc_ladder_with_impulsive(10).unwrap(),
            generators::rc_grid(3, 3).unwrap(),
        ] {
            let report = check_passivity_weierstrass(&model.system, &opts()).unwrap();
            assert!(
                report.verdict.is_passive(),
                "{}: {}",
                model.name,
                report.verdict
            );
        }
    }

    #[test]
    fn nonpassive_circuits_rejected() {
        for model in [
            generators::nonpassive_ladder(8).unwrap(),
            generators::negative_m1_model(8).unwrap(),
        ] {
            let report = check_passivity_weierstrass(&model.system, &opts()).unwrap();
            assert!(
                !report.verdict.is_passive(),
                "{} wrongly accepted",
                model.name
            );
        }
    }

    #[test]
    fn quadratic_impedance_rejected_for_higher_markov() {
        let e = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let a = Matrix::identity(3);
        let b = Matrix::column(&[0.0, 0.0, 1.0]);
        let c = Matrix::row_vector(&[-2.0, 0.0, 0.0]);
        let sys = DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 1.0)).unwrap();
        let report = check_passivity_weierstrass(&sys, &opts()).unwrap();
        assert_eq!(
            report.verdict,
            PassivityVerdict::NotPassive {
                reason: NonPassivityReason::HigherOrderMarkovParameters
            }
        );
    }

    #[test]
    fn unstable_finite_mode_rejected() {
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        let sys = DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 1.0)).unwrap();
        let report = check_passivity_weierstrass(&sys, &opts()).unwrap();
        assert_eq!(
            report.verdict,
            PassivityVerdict::NotPassive {
                reason: NonPassivityReason::UnstableFiniteModes
            }
        );
    }
}
