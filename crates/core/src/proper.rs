//! Extraction of the stable proper part (paper eqs. (21)–(23)).
//!
//! The input is the restored SHH pencil `(E₃, A₃)` with `E₃` nonsingular and
//! skew-Hamiltonian, `A₃` Hamiltonian, produced by
//! [`crate::reduction::restore_shh`].  Three steps:
//!
//! 1. PVL-reduce `E₃` with an orthogonal-symplectic `Z`:
//!    `Zᵀ E₃ Z = [[E₁₁, Ψ], [0, E₁₁ᵀ]]` and absorb the factor with the
//!    symplectic-adjoint pair `W_L, W_R` so that `Z_L E₃ Z_R = I` and
//!    `A₄₄ = Z_L A₃ Z_R` stays Hamiltonian (eq. (21)).
//! 2. Split the spectrum of `A₄₄` into its stable / antistable halves with an
//!    orthogonal-symplectic `Z₁` (eq. (22)).
//! 3. Decouple the two halves with a Lyapunov solve (eq. (23)); the leading
//!    block yields the stable proper part `G_p(s)` of the original transfer
//!    function (up to an unobservable constant skew-symmetric offset, which
//!    does not affect passivity).

use crate::error::PassivityError;
use ds_descriptor::{DescriptorSystem, StateSpace};
use ds_linalg::decomp::lu;
use ds_linalg::Matrix;
use ds_shh::{pvl, stable_subspace};

/// The regular Hamiltonian realization of the proper Φ-system
/// (intermediate result of eq. (21)).
#[derive(Debug, Clone)]
pub struct RegularizedPhi {
    /// The Hamiltonian state matrix `A₄₄` (with `E₄₄ = I`).
    pub a44: Matrix,
    /// Input matrix after the transformation.
    pub b44: Matrix,
    /// Output matrix after the transformation.
    pub c44: Matrix,
    /// Feedthrough (unchanged, symmetric).
    pub d44: Matrix,
    /// Half dimension `n_p`.
    pub half: usize,
}

/// Result of the full proper-part extraction.
#[derive(Debug, Clone)]
pub struct ProperPart {
    /// The stable proper part `G_p(s) = D_p + C_p (sI − Ã)⁻¹ B_p` with
    /// `D_p = (D_Φ)/2`.  Its Hermitian part on the imaginary axis equals that
    /// of the true proper part of `G(s)`.
    pub state_space: StateSpace,
    /// Residual of the block-diagonalization (norm of the off-diagonal
    /// coupling after the Lyapunov decoupling); a diagnostic for conditioning.
    pub decoupling_residual: f64,
}

/// Converts the restored SHH pencil into a regular pencil with a Hamiltonian
/// state matrix (paper eq. (21)).
///
/// # Errors
///
/// Propagates PVL / linear-solve failures; returns
/// [`PassivityError::ReductionBreakdown`] when the input is not a nonsingular
/// skew-Hamiltonian / Hamiltonian pair.
pub fn regularize(sys: &DescriptorSystem, rel_tol: f64) -> Result<RegularizedPhi, PassivityError> {
    let order = sys.order();
    if order == 0 {
        return Ok(RegularizedPhi {
            a44: Matrix::zeros(0, 0),
            b44: Matrix::zeros(0, sys.num_inputs()),
            c44: Matrix::zeros(sys.num_outputs(), 0),
            d44: sys.d().clone(),
            half: 0,
        });
    }
    let form = pvl::reduce(sys.e(), rel_tol).map_err(PassivityError::Shh)?;
    let n = form.half;
    let e11 = form.w11();
    let psi = form.psi();

    // Symplectic-adjoint factorization of the PVL form:
    //   T = [[E11, Ψ], [0, E11ᵀ]] = W_L · W_R  with
    //   W_L = [[E11, ½ Ψ E11⁻ᵀ], [0, I]],  W_R = [[I, ½ E11⁻¹ Ψ], [0, E11ᵀ]],
    // so that W_L = J W_Rᵀ Jᵀ and A₄₄ = W_L⁻¹ (Zᵀ A₃ Z) W_R⁻¹ is Hamiltonian.
    let e11_factor = lu::factor(&e11)?;
    if e11_factor.singular {
        return Err(PassivityError::breakdown(
            "the PVL-reduced E11 block is singular; E3 was not nonsingular",
        ));
    }
    let e11_inv = e11_factor.inverse()?;
    let half_e11_inv_psi = e11_inv.matmul(&psi)?.scale(0.5);
    let half_psi_e11_inv_t = psi.matmul(&e11_inv.transpose())?.scale(0.5);

    // W_L⁻¹ = [[E11⁻¹, −E11⁻¹·(½ Ψ E11⁻ᵀ)], [0, I]]
    let wl_inv = Matrix::from_blocks_2x2(
        &e11_inv,
        &e11_inv.matmul(&half_psi_e11_inv_t)?.scale(-1.0),
        &Matrix::zeros(n, n),
        &Matrix::identity(n),
    );
    // W_R⁻¹ = [[I, −(½ E11⁻¹ Ψ) E11⁻ᵀ], [0, E11⁻ᵀ]]
    let wr_inv = Matrix::from_blocks_2x2(
        &Matrix::identity(n),
        &half_e11_inv_psi.matmul(&e11_inv.transpose())?.scale(-1.0),
        &Matrix::zeros(n, n),
        &e11_inv.transpose(),
    );

    let zl = wl_inv.matmul(&form.z.transpose())?;
    let zr = form.z.matmul(&wr_inv)?;

    // Verify Z_L E₃ Z_R = I.
    let e_check = zl.matmul(&sys.e().matmul(&zr)?)?;
    let identity = Matrix::identity(order);
    let e_residual = (&e_check - &identity).norm_max();
    if e_residual > 1e-6 * sys.scale() {
        return Err(PassivityError::breakdown(format!(
            "regularization failed: Z_L E3 Z_R deviates from identity by {e_residual:.2e}"
        )));
    }

    let a44 = zl.matmul(&sys.a().matmul(&zr)?)?;
    let b44 = zl.matmul(sys.b())?;
    let c44 = sys.c().matmul(&zr)?;
    Ok(RegularizedPhi {
        a44,
        b44,
        c44,
        d44: sys.d().clone(),
        half: n,
    })
}

/// Splits the regularized Φ-system into a stable proper part plus its adjoint
/// and returns the stable part (paper eqs. (22)–(23)).
///
/// # Errors
///
/// * [`PassivityError::Shh`] when `A₄₄` has eigenvalues on the imaginary axis
///   (finite poles of `Φ` on the axis — excluded by the paper's stability
///   assumption).
/// * Propagates Lyapunov-solver failures.
pub fn extract_stable_part(
    phi: &RegularizedPhi,
    rel_tol: f64,
) -> Result<ProperPart, PassivityError> {
    let n = phi.half;
    let m_in = phi.b44.cols();
    let m_out = phi.c44.rows();
    let d_half = phi.d44.scale(0.5);
    if n == 0 {
        return Ok(ProperPart {
            state_space: StateSpace::new(
                Matrix::zeros(0, 0),
                Matrix::zeros(0, m_in),
                Matrix::zeros(m_out, 0),
                d_half,
            )?,
            decoupling_residual: 0.0,
        });
    }
    let split =
        stable_subspace::hamiltonian_split(&phi.a44, rel_tol).map_err(PassivityError::Shh)?;
    // Z₁ᵀ A₄₄ Z₁ = [[Ã, Γ], [0, −Ãᵀ]]; decoupling with Z₂ = Z₁ [[I, Y], [0, I]]
    // (Ã Y + Y Ãᵀ + Γ = 0, with Y already delivered by the sign function)
    // leaves the diagonal blocks untouched, so the stable part reads off the
    // split directly and the full 2n × 2n similarity `Z₂⁻¹ A₄₄ Z₂` never needs
    // to be formed:
    //   A₅ = [[Ã, ÃY + YÃᵀ + Γ], [0, −Ãᵀ]],
    //   B₅ = [[Uᵀ − Y·(−JU)ᵀ], [(−JU)ᵀ]]·B₄₄,   C₅ = C₄₄·[U, …].
    let y = &split.decoupling;
    // The would-be off-diagonal block of A₅ is exactly the Lyapunov residual —
    // keep it as the conditioning diagnostic.
    let residual = &(&split.stable_block.matmul(y)?
        + &y.matmul(&split.stable_block.transpose())?)
        + &split.coupling_block;
    let coupling = residual.norm_max();

    let z1t_b = split.z1.transpose_matmul(&phi.b44)?;
    let b_stable = &z1t_b.block(0, n, 0, m_in) - &y.matmul(&z1t_b.block(n, 2 * n, 0, m_in))?;
    let c_stable = phi.c44.matmul(&split.stable_basis)?;
    debug_assert_eq!(c_stable.shape(), (m_out, n));

    Ok(ProperPart {
        state_space: StateSpace::new(split.stable_block, b_stable, c_stable, d_half)?,
        decoupling_residual: coupling,
    })
}

/// Convenience wrapper: regularizes and extracts the stable proper part in one
/// call.
///
/// # Errors
///
/// See [`regularize`] and [`extract_stable_part`].
pub fn extract_proper_part(
    sys: &DescriptorSystem,
    rel_tol: f64,
) -> Result<ProperPart, PassivityError> {
    let regular = regularize(sys, rel_tol)?;
    extract_stable_part(&regular, rel_tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction;
    use ds_descriptor::transfer;
    use ds_shh::pencil::build_phi;
    use ds_shh::structure;

    /// Runs the full stage-1..3 pipeline on a descriptor system and returns the
    /// restored SHH pencil of the proper Φ-part.
    fn pipeline(sys: &DescriptorSystem) -> DescriptorSystem {
        let phi = build_phi(sys).unwrap();
        let cancelled = reduction::cancel_impulsive_modes(&phi, 1e-10).unwrap();
        let removed = reduction::remove_nondynamic_modes(&cancelled.reduced, 1e-10).unwrap();
        reduction::restore_shh(&removed.reduced).unwrap().system
    }

    fn proper_rc() -> DescriptorSystem {
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.5]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 0.25)).unwrap()
    }

    #[test]
    fn regularize_produces_hamiltonian_a44() {
        let restored = pipeline(&proper_rc());
        let regular = regularize(&restored, 1e-10).unwrap();
        assert_eq!(regular.half * 2, restored.order());
        let scale = regular.a44.norm_fro().max(1.0);
        assert!(structure::is_hamiltonian(&regular.a44, 1e-7 * scale).unwrap());
    }

    #[test]
    fn stable_part_of_proper_rc_matches_transfer_function() {
        let sys = proper_rc();
        let restored = pipeline(&sys);
        let proper = extract_proper_part(&restored, 1e-10).unwrap();
        assert!(proper.decoupling_residual < 1e-7);
        let ss = &proper.state_space;
        assert_eq!(ss.order(), 1);
        assert!(ss.is_stable(1e-10).unwrap());
        // The Hermitian part of the extracted proper part must equal that of
        // the original G on the imaginary axis (G is proper here).
        for &w in &[0.0, 0.7, 3.0, 50.0] {
            let g = transfer::evaluate_jomega(&sys, w).unwrap();
            let gp = transfer::evaluate_jomega(&ss.to_descriptor(), w).unwrap();
            let herm_g = &g.re + &g.re.transpose();
            let herm_gp = &gp.re + &gp.re.transpose();
            assert!(
                herm_g.approx_eq(&herm_gp, 1e-8),
                "Hermitian parts differ at ω = {w}: {} vs {}",
                herm_g[(0, 0)],
                herm_gp[(0, 0)]
            );
        }
    }

    #[test]
    fn impulsive_system_proper_part_is_the_resistance() {
        // G(s) = 2 + 3s: proper part is the constant 2.
        let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-3.0, 0.0]]);
        let sys = DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 2.0)).unwrap();
        let restored = pipeline(&sys);
        assert_eq!(restored.order(), 0);
        let proper = extract_proper_part(&restored, 1e-10).unwrap();
        assert_eq!(proper.state_space.order(), 0);
        // D_p = D_Φ / 2 = (2 + 2)/2 = 2.
        assert!((proper.state_space.d[(0, 0)] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn mixed_system_proper_part_hermitian_match() {
        // G(s) = 0.25 + 1/(s+1) + 0.5 + 1.5 s  (proper part 0.75 + 1/(s+1)).
        let rc = proper_rc();
        let rl = {
            let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
            let a = Matrix::identity(2);
            let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
            let c = Matrix::from_rows(&[&[-1.5, 0.0]]);
            DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 0.5)).unwrap()
        };
        let sys = rc.parallel_sum(&rl).unwrap();
        let restored = pipeline(&sys);
        let proper = extract_proper_part(&restored, 1e-10).unwrap();
        assert_eq!(proper.state_space.order(), 1);
        for &w in &[0.0, 1.0, 10.0] {
            let g = transfer::evaluate_jomega(&sys, w).unwrap();
            let gp = transfer::evaluate_jomega(&proper.state_space.to_descriptor(), w).unwrap();
            // Re G(jω) (Hermitian part) must agree — the sM1 term is skew on jω.
            assert!(
                (g.re[(0, 0)] - gp.re[(0, 0)]).abs() < 1e-8,
                "Re mismatch at {w}: {} vs {}",
                g.re[(0, 0)],
                gp.re[(0, 0)]
            );
        }
    }

    #[test]
    fn empty_input_handled() {
        let empty = DescriptorSystem::new(
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 1),
            Matrix::zeros(1, 0),
            Matrix::filled(1, 1, 3.0),
        )
        .unwrap();
        let proper = extract_proper_part(&empty, 1e-10).unwrap();
        assert_eq!(proper.state_space.order(), 0);
        assert!((proper.state_space.d[(0, 0)] - 1.5).abs() < 1e-12);
    }
}
