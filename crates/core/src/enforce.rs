//! First-order passivity enforcement by resistive loading.
//!
//! The paper's conclusion points out that "further applications such as
//! passivity enforcement … can readily be developed on top of this framework".
//! This module provides the simplest such application: when the passivity test
//! finds a bounded violation of the Popov function, the feedthrough `D` is
//! perturbed by a (small) multiple of the identity — circuit-wise, a series
//! resistance is added at every port — which lifts `Φ(jω) = G(jω) + G(jω)ᴴ`
//! uniformly over all frequencies.  Violations *at infinity* (an indefinite
//! residue `M₁` or higher-order Markov parameters) cannot be repaired by a
//! constant perturbation and are reported as non-enforceable.

use crate::error::PassivityError;
use crate::fast::{check_passivity, FastTestOptions};
use crate::report::{NonPassivityReason, PassivityReport};
use ds_descriptor::{transfer, DescriptorSystem};
use ds_linalg::Matrix;

/// Options for the resistive passivity enforcement.
#[derive(Debug, Clone)]
pub struct EnforcementOptions {
    /// Safety margin added on top of the measured violation (absolute, in the
    /// units of the Popov function).
    pub margin: f64,
    /// Maximum number of perturb-and-retest iterations.
    pub max_iterations: usize,
    /// Options forwarded to the passivity test between iterations.
    pub test: FastTestOptions,
    /// Frequencies used to measure the violation depth.
    pub frequencies: Vec<f64>,
}

impl Default for EnforcementOptions {
    fn default() -> Self {
        let mut freqs = vec![0.0];
        let mut w = 1e-3;
        while w <= 1e5 {
            freqs.push(w);
            w *= 10.0_f64.sqrt();
        }
        EnforcementOptions {
            margin: 1e-6,
            max_iterations: 8,
            test: FastTestOptions::default(),
            frequencies: freqs,
        }
    }
}

/// Outcome of the enforcement attempt.
#[derive(Debug, Clone)]
pub enum EnforcementOutcome {
    /// The input was already passive; it is returned unchanged.
    AlreadyPassive {
        /// The passing report of the unmodified system.
        report: PassivityReport,
    },
    /// Passivity was restored by adding `resistance · I` to the feedthrough.
    Enforced {
        /// The perturbed, now passive, descriptor system (boxed: a full
        /// system is much larger than the other variants' payloads).
        system: Box<DescriptorSystem>,
        /// The series resistance added at every port (the size of the
        /// perturbation of `D`).
        resistance: f64,
        /// The passing report of the perturbed system.
        report: PassivityReport,
    },
    /// The violation sits at `ω = ∞` (indefinite `M₁` or Markov parameters of
    /// order ≥ 2) and cannot be removed by a constant perturbation.
    NotEnforceable {
        /// The reason reported by the passivity test.
        reason: NonPassivityReason,
    },
}

impl EnforcementOutcome {
    /// `true` when the returned (possibly perturbed) system is passive.
    pub fn is_passive(&self) -> bool {
        !matches!(self, EnforcementOutcome::NotEnforceable { .. })
    }
}

/// Measures the worst Popov-function violation over the option's frequency
/// grid (0 when the sampled Popov function is PSD everywhere).
fn sampled_violation(sys: &DescriptorSystem, frequencies: &[f64]) -> Result<f64, PassivityError> {
    let mut worst: f64 = 0.0;
    for &w in frequencies {
        let value = match transfer::evaluate_jomega(sys, w) {
            Ok(v) => v,
            Err(ds_descriptor::DescriptorError::SingularPencil) => continue,
            Err(e) => return Err(PassivityError::Descriptor(e)),
        };
        let min_eig = value
            .popov_min_eigenvalue()
            .map_err(PassivityError::Descriptor)?;
        worst = worst.min(min_eig);
    }
    Ok(-worst)
}

/// Attempts to enforce passivity by adding a series resistance at every port.
///
/// # Errors
///
/// Propagates structural failures of the underlying passivity test.
pub fn enforce_passivity(
    sys: &DescriptorSystem,
    options: &EnforcementOptions,
) -> Result<EnforcementOutcome, PassivityError> {
    let report = check_passivity(sys, &options.test)?;
    if report.verdict.is_passive() {
        return Ok(EnforcementOutcome::AlreadyPassive { report });
    }
    let reason = match &report.verdict {
        crate::report::PassivityVerdict::NotPassive { reason } => reason.clone(),
        crate::report::PassivityVerdict::Passive { .. } => unreachable!(),
    };
    // Violations at infinity cannot be fixed with a constant perturbation.
    if matches!(
        reason,
        NonPassivityReason::IndefiniteResidue { .. }
            | NonPassivityReason::HigherOrderMarkovParameters
            | NonPassivityReason::UnstableFiniteModes
    ) {
        return Ok(EnforcementOutcome::NotEnforceable { reason });
    }

    let m = sys.num_inputs();
    let mut current = sys.clone();
    let mut total_resistance = 0.0;
    let mut last_reason = reason;
    for _ in 0..options.max_iterations {
        // Measure the violation both by sampling the Popov function and from
        // the witness the test itself produced; the Popov function shifts by
        // 2·r when D is shifted by r·I, so half the violation suffices.
        let sampled = sampled_violation(&current, &options.frequencies)?;
        let witnessed = match &last_reason {
            NonPassivityReason::ProperPartNotPositiveReal { min_eigenvalue, .. } => {
                (-*min_eigenvalue).max(0.0)
            }
            _ => 0.0,
        };
        let resistance = 0.5 * sampled.max(witnessed).max(options.margin) + options.margin;
        total_resistance += resistance;
        let d_new = current.d() + &Matrix::identity(m).scale(resistance);
        current = DescriptorSystem::new(
            current.e().clone(),
            current.a().clone(),
            current.b().clone(),
            current.c().clone(),
            d_new,
        )?;
        let report = check_passivity(&current, &options.test)?;
        match &report.verdict {
            crate::report::PassivityVerdict::Passive { .. } => {
                return Ok(EnforcementOutcome::Enforced {
                    system: Box::new(current),
                    resistance: total_resistance,
                    report,
                });
            }
            crate::report::PassivityVerdict::NotPassive { reason } => {
                last_reason = reason.clone();
            }
        }
    }
    Ok(EnforcementOutcome::NotEnforceable {
        reason: last_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_circuits::generators;

    #[test]
    fn passive_system_left_untouched() {
        let model = generators::rlc_ladder_with_impulsive(10).unwrap();
        let outcome = enforce_passivity(&model.system, &EnforcementOptions::default()).unwrap();
        assert!(matches!(outcome, EnforcementOutcome::AlreadyPassive { .. }));
        assert!(outcome.is_passive());
    }

    #[test]
    fn dc_violation_repaired_by_series_resistance() {
        let model = generators::nonpassive_ladder(8).unwrap();
        let outcome = enforce_passivity(&model.system, &EnforcementOptions::default()).unwrap();
        match outcome {
            EnforcementOutcome::Enforced {
                system,
                resistance,
                report,
            } => {
                assert!(resistance > 0.0);
                assert!(report.verdict.is_passive());
                // The perturbation only touched D.
                assert_eq!(system.e(), model.system.e());
                assert_eq!(system.a(), model.system.a());
                assert!((system.d()[(0, 0)] - model.system.d()[(0, 0)] - resistance).abs() < 1e-12);
            }
            other => panic!("expected Enforced, got {other:?}"),
        }
    }

    #[test]
    fn negative_m1_cannot_be_enforced_with_constant_loading() {
        let model = generators::negative_m1_model(8).unwrap();
        let outcome = enforce_passivity(&model.system, &EnforcementOptions::default()).unwrap();
        assert!(matches!(
            outcome,
            EnforcementOutcome::NotEnforceable {
                reason: NonPassivityReason::IndefiniteResidue { .. }
            }
        ));
        assert!(!outcome.is_passive());
    }
}
