//! # ds-passivity
//!
//! A fast passivity test for descriptor systems via structure-preserving
//! transformations of skew-Hamiltonian/Hamiltonian matrix pencils — a full
//! reimplementation of Wong & Chu, DAC 2006.
//!
//! ## What this crate provides
//!
//! * [`fast`] — the paper's O(n³) passivity test ([`fast::check_passivity`]):
//!   build `Φ(s) = G(s) + G~(s)` as an SHH pencil, cancel the impulsive modes,
//!   extract `M₁` and the stable proper part, and test positive realness with
//!   the Hamiltonian-eigenvalue test.
//! * [`reduction`] — the structure-preserving reductions of paper
//!   eqs. (11)–(20) as reusable building blocks.
//! * [`proper`] — the proper-part extraction of eqs. (21)–(23)
//!   (the paper's "sidetrack" deliverable).
//! * [`residue`] — `M₁` extraction from grade-1/grade-2 generalized
//!   eigenvector chains (eqs. (24)–(25)).
//! * [`weierstrass_test`] — the Weierstrass-decomposition baseline the paper
//!   compares against.
//! * [`lmi_test`] — the extended-LMI baseline (Freund–Jarre, paper eq. (4)).
//! * [`report`] — verdicts, per-stage diagnostics and timings shared by all
//!   three tests.
//!
//! ## Quick start
//!
//! ```
//! use ds_linalg::Matrix;
//! use ds_descriptor::DescriptorSystem;
//! use ds_passivity::fast::{check_passivity, FastTestOptions};
//!
//! # fn main() -> Result<(), ds_passivity::PassivityError> {
//! // Impedance of a series RL branch: G(s) = 2 + 0.8 s  (passive, impulsive).
//! let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
//! let a = Matrix::identity(2);
//! let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
//! let c = Matrix::from_rows(&[&[-0.8, 0.0]]);
//! let d = Matrix::filled(1, 1, 2.0);
//! let sys = DescriptorSystem::new(e, a, b, c, d)?;
//!
//! let report = check_passivity(&sys, &FastTestOptions::default())?;
//! assert!(report.verdict.is_passive());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enforce;
pub mod error;
pub mod fast;
pub mod lmi_test;
pub mod proper;
pub mod reduction;
pub mod report;
pub mod residue;
pub mod weierstrass_test;

pub use error::PassivityError;
pub use report::{NonPassivityReason, PassivityReport, PassivityVerdict};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::error::PassivityError;
    pub use crate::fast::{check_passivity, FastTestOptions};
    pub use crate::report::{NonPassivityReason, PassivityReport, PassivityVerdict};
}
