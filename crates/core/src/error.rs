//! Error type for the passivity tests.

use ds_descriptor::DescriptorError;
use ds_linalg::LinalgError;
use ds_lmi::LmiError;
use ds_shh::ShhError;
use std::fmt;

/// Error returned by the passivity tests.
///
/// Errors are reserved for *structural* problems (wrong dimensions, singular
/// pencils, numerical breakdowns).  "The system is not passive" is never an
/// error — it is reported through
/// [`PassivityVerdict`](crate::report::PassivityVerdict).
#[derive(Debug, Clone, PartialEq)]
pub enum PassivityError {
    /// The system has a different number of inputs and outputs.
    NotSquareSystem {
        /// Number of inputs.
        inputs: usize,
        /// Number of outputs.
        outputs: usize,
    },
    /// The pencil `(E, A)` is singular, so the transfer function is not
    /// defined.
    SingularPencil,
    /// The reduction produced an inconsistent intermediate system (typically a
    /// symptom of extreme ill-conditioning); the diagnostic string says which
    /// stage failed.
    ReductionBreakdown {
        /// Which stage broke down and why.
        details: String,
    },
    /// A numerical kernel failed underneath.
    Numerical(LinalgError),
    /// A descriptor-system operation failed underneath.
    Descriptor(DescriptorError),
    /// An SHH-pencil operation failed underneath.
    Shh(ShhError),
    /// An LMI / ARE operation failed underneath.
    Lmi(LmiError),
}

impl fmt::Display for PassivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassivityError::NotSquareSystem { inputs, outputs } => write!(
                f,
                "passivity is defined for square systems only; got {inputs} inputs and {outputs} outputs"
            ),
            PassivityError::SingularPencil => {
                write!(f, "the matrix pencil (E, A) is singular")
            }
            PassivityError::ReductionBreakdown { details } => {
                write!(f, "reduction breakdown: {details}")
            }
            PassivityError::Numerical(e) => write!(f, "numerical kernel failed: {e}"),
            PassivityError::Descriptor(e) => write!(f, "descriptor operation failed: {e}"),
            PassivityError::Shh(e) => write!(f, "SHH-pencil operation failed: {e}"),
            PassivityError::Lmi(e) => write!(f, "LMI/ARE operation failed: {e}"),
        }
    }
}

impl std::error::Error for PassivityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PassivityError::Numerical(e) => Some(e),
            PassivityError::Descriptor(e) => Some(e),
            PassivityError::Shh(e) => Some(e),
            PassivityError::Lmi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for PassivityError {
    fn from(e: LinalgError) -> Self {
        PassivityError::Numerical(e)
    }
}

impl From<DescriptorError> for PassivityError {
    fn from(e: DescriptorError) -> Self {
        match e {
            DescriptorError::SingularPencil => PassivityError::SingularPencil,
            other => PassivityError::Descriptor(other),
        }
    }
}

impl From<ShhError> for PassivityError {
    fn from(e: ShhError) -> Self {
        PassivityError::Shh(e)
    }
}

impl From<LmiError> for PassivityError {
    fn from(e: LmiError) -> Self {
        PassivityError::Lmi(e)
    }
}

impl PassivityError {
    /// Convenience constructor for [`PassivityError::ReductionBreakdown`].
    pub fn breakdown(details: impl Into<String>) -> Self {
        PassivityError::ReductionBreakdown {
            details: details.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PassivityError::SingularPencil
            .to_string()
            .contains("singular"));
        assert!(PassivityError::breakdown("stage 2 failed")
            .to_string()
            .contains("stage 2"));
        assert!(PassivityError::NotSquareSystem {
            inputs: 1,
            outputs: 2
        }
        .to_string()
        .contains("square"));
    }

    #[test]
    fn singular_pencil_mapped_from_descriptor_error() {
        let e: PassivityError = DescriptorError::SingularPencil.into();
        assert_eq!(e, PassivityError::SingularPencil);
    }

    #[test]
    fn sources_preserved() {
        let e: PassivityError = LinalgError::NotPositiveDefinite.into();
        assert!(std::error::Error::source(&e).is_some());
        let s: PassivityError = ShhError::ImaginaryAxisEigenvalues.into();
        assert!(std::error::Error::source(&s).is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PassivityError>();
    }
}
