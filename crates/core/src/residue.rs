//! Extraction of the residue matrix `M₁` (paper eqs. (24)–(25)).
//!
//! For a minimal passive descriptor system the impulsive part of `G(s)` is
//! `s·M₁` with `M₁ ⪰ 0`.  `M₁` is recovered from the grade-1/grade-2
//! generalized eigenvector chains of the pencil `(E, A)` at infinity:
//!
//! * right chains: `E v⁽¹⁾ = 0`, `E v⁽²⁾ = A v⁽¹⁾` (controllable directions),
//! * left chains:  `Eᵀ w⁽¹⁾ = 0`, `Eᵀ w⁽²⁾ = Aᵀ w⁽¹⁾` (observable directions),
//!
//! and the deflating projections `Z_R∞ = [V⁽¹⁾, V⁽²⁾]`,
//! `Z_L∞ = [W⁽¹⁾, W⁽²⁾]ᵀ` give `M₁ = −C_∞ A_∞⁺ E_∞ A_∞⁺ B_∞` on the projected
//! quadruple (paper eq. (25)).

use crate::error::PassivityError;
use ds_descriptor::DescriptorSystem;
use ds_linalg::{pinv, subspace, Matrix};

/// Result of the residue extraction.
#[derive(Debug, Clone)]
pub struct ResidueExtraction {
    /// The residue matrix `M₁` (`m x m`, zero when the system is proper).
    pub m1: Matrix,
    /// Number of grade-2 right (controllable) chains found.
    pub right_chains: usize,
    /// Number of grade-2 left (observable) chains found.
    pub left_chains: usize,
}

/// Finds the grade-1 directions that continue into grade-2 chains:
/// an orthonormal basis of `{v : E v = 0  and  A v ∈ range(E)}`.
fn chain_starts(e: &Matrix, a: &Matrix, rel_tol: f64) -> Result<Matrix, PassivityError> {
    let n = e.rows();
    let kernel = subspace::null_space(e, rel_tol)?;
    if kernel.cols() == 0 {
        return Ok(Matrix::zeros(n, 0));
    }
    // Projector onto the orthogonal complement of range(E).
    let range = subspace::range_basis(e, rel_tol)?;
    let projector = &Matrix::identity(n) - &(&range * &range.transpose());
    // v ∈ ker(E) with (I − P_range) A v = 0.
    let stacked = Matrix::vstack(&[e, &projector.matmul(a)?]);
    let starts = subspace::null_space(&stacked, rel_tol)?;
    Ok(starts)
}

/// Extracts `M₁` from the generalized eigenvector chains of `(E, A)`.
///
/// Returns a zero matrix for proper systems (no grade-2 chains).  The result
/// is exact when the polynomial part of `G(s)` has degree one; higher-order
/// polynomial parts are the caller's responsibility to detect (they make the
/// system non-passive regardless of `M₁`).
///
/// # Errors
///
/// Propagates numerical failures from the subspace computations.
pub fn extract_m1(
    sys: &DescriptorSystem,
    rel_tol: f64,
) -> Result<ResidueExtraction, PassivityError> {
    let m_out = sys.num_outputs();
    let m_in = sys.num_inputs();
    let zero = Matrix::zeros(m_out, m_in);
    let n = sys.order();
    if n == 0 {
        return Ok(ResidueExtraction {
            m1: zero,
            right_chains: 0,
            left_chains: 0,
        });
    }
    let e = sys.e();
    let a = sys.a();

    // Right (controllable) chains.
    let v1 = chain_starts(e, a, rel_tol)?;
    // Left (observable) chains.
    let et = e.transpose();
    let at = a.transpose();
    let w1 = chain_starts(&et, &at, rel_tol)?;

    if v1.cols() == 0 || w1.cols() == 0 {
        return Ok(ResidueExtraction {
            m1: zero,
            right_chains: v1.cols(),
            left_chains: w1.cols(),
        });
    }

    // Grade-2 partners: minimum-norm solutions of E V2 = A V1 and Eᵀ W2 = Aᵀ W1.
    let e_pinv = pinv::pseudo_inverse(e, rel_tol)?;
    let v2 = e_pinv.matmul(&a.matmul(&v1)?)?;
    let et_pinv = pinv::pseudo_inverse(&et, rel_tol)?;
    let w2 = et_pinv.matmul(&at.matmul(&w1)?)?;

    // Deflating projections (paper eq. (25)).
    let zr = Matrix::hstack(&[&v1, &v2]);
    let zl = Matrix::hstack(&[&w1, &w2]).transpose();
    let e_inf = zl.matmul(&e.matmul(&zr)?)?;
    let a_inf = zl.matmul(&a.matmul(&zr)?)?;
    let b_inf = zl.matmul(sys.b())?;
    let c_inf = sys.c().matmul(&zr)?;

    let a_inf_pinv = pinv::pseudo_inverse(&a_inf, rel_tol)?;
    let inner = a_inf_pinv.matmul(&e_inf.matmul(&a_inf_pinv.matmul(&b_inf)?)?)?;
    let m1 = c_inf.matmul(&inner)?.scale(-1.0);

    Ok(ResidueExtraction {
        m1,
        right_chains: v1.cols(),
        left_chains: w1.cols(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::transfer;

    fn series_rl(r: f64, l: f64) -> DescriptorSystem {
        let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-l, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, r)).unwrap()
    }

    fn proper_rc() -> DescriptorSystem {
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.5]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 0.25)).unwrap()
    }

    #[test]
    fn m1_of_series_rl_is_the_inductance() {
        let extraction = extract_m1(&series_rl(2.0, 3.5), 1e-10).unwrap();
        assert_eq!(extraction.right_chains, 1);
        assert_eq!(extraction.left_chains, 1);
        assert!((extraction.m1[(0, 0)] - 3.5).abs() < 1e-9);
    }

    #[test]
    fn m1_of_proper_system_is_zero() {
        let extraction = extract_m1(&proper_rc(), 1e-10).unwrap();
        assert_eq!(extraction.m1.norm_max(), 0.0);
        assert_eq!(extraction.right_chains, 0);
    }

    #[test]
    fn m1_of_mixed_system_matches_sampling() {
        let sys = proper_rc().parallel_sum(&series_rl(0.5, 2.25)).unwrap();
        let extraction = extract_m1(&sys, 1e-10).unwrap();
        let sampled = transfer::sample_m1(&sys, 1e5).unwrap();
        assert!(
            (extraction.m1[(0, 0)] - sampled[(0, 0)]).abs() < 1e-5,
            "chain-based {} vs sampled {}",
            extraction.m1[(0, 0)],
            sampled[(0, 0)]
        );
        assert!((extraction.m1[(0, 0)] - 2.25).abs() < 1e-8);
    }

    #[test]
    fn m1_of_mimo_system_is_symmetric_psd() {
        // Two decoupled RL branches: M1 = diag(1.5, 0.75).
        let branch1 = series_rl(1.0, 1.5);
        let branch2 = series_rl(0.5, 0.75);
        let e = Matrix::block_diag(&[branch1.e(), branch2.e()]);
        let a = Matrix::block_diag(&[branch1.a(), branch2.a()]);
        let b = Matrix::block_diag(&[branch1.b(), branch2.b()]);
        let c = Matrix::block_diag(&[branch1.c(), branch2.c()]);
        let d = Matrix::diag(&[1.0, 0.5]);
        let sys = DescriptorSystem::new(e, a, b, c, d).unwrap();
        let extraction = extract_m1(&sys, 1e-10).unwrap();
        assert!(extraction.m1.is_symmetric(1e-9));
        assert!((extraction.m1[(0, 0)] - 1.5).abs() < 1e-8);
        assert!((extraction.m1[(1, 1)] - 0.75).abs() < 1e-8);
        assert!(extraction.m1[(0, 1)].abs() < 1e-9);
    }

    #[test]
    fn negative_inductance_gives_indefinite_m1() {
        let extraction = extract_m1(&series_rl(1.0, -2.0), 1e-10).unwrap();
        assert!(extraction.m1[(0, 0)] < 0.0);
    }

    #[test]
    fn regular_system_has_no_chains() {
        let sys = DescriptorSystem::new(
            Matrix::identity(2),
            Matrix::diag(&[-1.0, -2.0]),
            Matrix::column(&[1.0, 1.0]),
            Matrix::row_vector(&[1.0, 1.0]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let extraction = extract_m1(&sys, 1e-10).unwrap();
        assert_eq!(extraction.m1.norm_max(), 0.0);
    }

    #[test]
    fn empty_system() {
        let sys = DescriptorSystem::new(
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 2),
            Matrix::zeros(2, 0),
            Matrix::identity(2),
        )
        .unwrap();
        let extraction = extract_m1(&sys, 1e-10).unwrap();
        assert_eq!(extraction.m1.shape(), (2, 2));
        assert_eq!(extraction.m1.norm_max(), 0.0);
    }
}
