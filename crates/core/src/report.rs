//! Verdicts, diagnostics and timing reports shared by all passivity tests.

use ds_linalg::Matrix;
use std::fmt;
use std::time::Duration;

/// Why a system was declared non-passive.
#[derive(Debug, Clone, PartialEq)]
pub enum NonPassivityReason {
    /// `Φ(s) = G(s) + G~(s)` retains observable/controllable impulsive modes
    /// after the cancellation step — impossible for a passive system
    /// (paper Section 3.1).
    ResidualImpulsiveModes,
    /// The bookkeeping check of removed impulsive vs. nondynamic modes failed,
    /// indicating Markov parameters `M_k ≠ 0` for some `k ≥ 2`
    /// (paper Section 3.4).
    HigherOrderMarkovParameters,
    /// The residue matrix `M₁` (coefficient of `s`) is not positive
    /// semidefinite.
    IndefiniteResidue {
        /// Smallest eigenvalue of the symmetrized `M₁`.
        min_eigenvalue: f64,
    },
    /// The finite dynamic modes are not all in the open left half-plane.
    UnstableFiniteModes,
    /// The proper part fails the positive-realness test.
    ProperPartNotPositiveReal {
        /// Frequency of the witnessed violation, when available.
        witness_frequency: Option<f64>,
        /// Most negative eigenvalue of the Popov function found.
        min_eigenvalue: f64,
    },
    /// The LMI baseline could not find a feasible point within its budget.
    LmiInfeasible {
        /// Final cone-violation objective.
        objective: f64,
    },
}

impl fmt::Display for NonPassivityReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonPassivityReason::ResidualImpulsiveModes => {
                write!(f, "G + G~ retains observable/controllable impulsive modes")
            }
            NonPassivityReason::HigherOrderMarkovParameters => {
                write!(f, "Markov parameters of order ≥ 2 are present")
            }
            NonPassivityReason::IndefiniteResidue { min_eigenvalue } => write!(
                f,
                "residue matrix M1 is not positive semidefinite (λ_min = {min_eigenvalue:.3e})"
            ),
            NonPassivityReason::UnstableFiniteModes => {
                write!(f, "finite dynamic modes are not all stable")
            }
            NonPassivityReason::ProperPartNotPositiveReal {
                witness_frequency,
                min_eigenvalue,
            } => match witness_frequency {
                Some(w) => write!(
                    f,
                    "proper part is not positive real (λ_min = {min_eigenvalue:.3e} at ω = {w:.3e})"
                ),
                None => write!(
                    f,
                    "proper part is not positive real (λ_min = {min_eigenvalue:.3e})"
                ),
            },
            NonPassivityReason::LmiInfeasible { objective } => write!(
                f,
                "positive-real LMI is infeasible (final violation {objective:.3e})"
            ),
        }
    }
}

/// The outcome of a passivity test.
#[derive(Debug, Clone, PartialEq)]
pub enum PassivityVerdict {
    /// The system is passive (positive real).
    Passive {
        /// `true` when the certificate additionally guarantees *strict*
        /// positive realness of the proper part.
        strictly: bool,
    },
    /// The system is not passive.
    NotPassive {
        /// Which condition failed.
        reason: NonPassivityReason,
    },
}

impl PassivityVerdict {
    /// `true` for passive outcomes.
    pub fn is_passive(&self) -> bool {
        matches!(self, PassivityVerdict::Passive { .. })
    }
}

impl fmt::Display for PassivityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassivityVerdict::Passive { strictly: true } => write!(f, "passive (strictly)"),
            PassivityVerdict::Passive { strictly: false } => write!(f, "passive"),
            PassivityVerdict::NotPassive { reason } => write!(f, "not passive: {reason}"),
        }
    }
}

/// Wall-clock timing of the stages of the proposed test (used by the ablation
/// and profiling benchmarks, EXP-A2 in DESIGN.md).
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Building `Φ(s)` and the SHH pencil.
    pub build_phi: Duration,
    /// Removing impulse-unobservable/uncontrollable modes (eqs. (11)–(17)).
    pub impulse_removal: Duration,
    /// Removing nondynamic modes and restoring the SHH structure
    /// (eqs. (18)–(20)).
    pub nondynamic_removal: Duration,
    /// `M₁` extraction and definiteness check (eqs. (24)–(25)).
    pub residue_extraction: Duration,
    /// PVL reduction and conversion to a regular pencil (eq. (21)).
    pub regularization: Duration,
    /// Stable/antistable splitting and Lyapunov decoupling (eqs. (22)–(23)).
    pub spectral_split: Duration,
    /// Final positive-realness test of the proper part.
    pub positive_real_test: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.build_phi
            + self.impulse_removal
            + self.nondynamic_removal
            + self.residue_extraction
            + self.regularization
            + self.spectral_split
            + self.positive_real_test
    }
}

/// Structural diagnostics gathered along the proposed test.
#[derive(Debug, Clone, Default)]
pub struct ReductionDiagnostics {
    /// Order `2n` of the Φ-system.
    pub phi_order: usize,
    /// Dimension of the impulse-unobservable subspace `Z₀` found in eq. (11).
    pub unobservable_impulsive_directions: usize,
    /// Total states removed by the impulse-mode cancellation (eq. (17)).
    pub removed_impulse_states: usize,
    /// Nondynamic modes of `Φ` removed by the Schur-complement step (eq. (19)).
    pub removed_nondynamic_states: usize,
    /// Nondynamic modes of `Φ` that were swept up by the impulse-mode removal
    /// (the grade-1 partners of the cancelled grade-2 chains).
    pub nondynamic_removed_with_impulsive: usize,
    /// Order of the final regular proper Φ-system (`2·n_p`).
    pub proper_phi_order: usize,
    /// Whether the paper's bookkeeping identity (removed impulsive modes =
    /// their grade-1 partners) held, i.e. no `M_k`, `k ≥ 2`, was detected.
    pub markov_bookkeeping_consistent: bool,
}

/// The full report of a passivity test.
#[derive(Debug, Clone)]
pub struct PassivityReport {
    /// The verdict.
    pub verdict: PassivityVerdict,
    /// Which method produced the report (`"shh-fast"`, `"weierstrass"`, `"lmi"`).
    pub method: &'static str,
    /// The extracted residue matrix `M₁` (zero when the system is proper), if
    /// the flow reached that stage.
    pub m1: Option<Matrix>,
    /// The extracted stable proper part, if the flow reached that stage
    /// (the paper's "sidetrack" output).
    pub proper_part: Option<ds_descriptor::StateSpace>,
    /// Structural diagnostics (meaningful for the proposed test).
    pub diagnostics: ReductionDiagnostics,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl PassivityReport {
    /// Creates a report with the given verdict and method, empty otherwise.
    pub fn new(method: &'static str, verdict: PassivityVerdict) -> Self {
        PassivityReport {
            verdict,
            method,
            m1: None,
            proper_part: None,
            diagnostics: ReductionDiagnostics::default(),
            timings: StageTimings::default(),
        }
    }
}

impl fmt::Display for PassivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.method, self.verdict)?;
        if let Some(m1) = &self.m1 {
            writeln!(f, "  M1 norm: {:.3e}", m1.norm_fro())?;
        }
        if let Some(p) = &self.proper_part {
            writeln!(f, "  proper part order: {}", p.order())?;
        }
        write!(
            f,
            "  removed impulsive states: {}, removed nondynamic states: {}",
            self.diagnostics.removed_impulse_states, self.diagnostics.removed_nondynamic_states
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(PassivityVerdict::Passive { strictly: true }.is_passive());
        assert!(PassivityVerdict::Passive { strictly: false }.is_passive());
        assert!(!PassivityVerdict::NotPassive {
            reason: NonPassivityReason::ResidualImpulsiveModes
        }
        .is_passive());
    }

    #[test]
    fn display_formats() {
        let v = PassivityVerdict::NotPassive {
            reason: NonPassivityReason::IndefiniteResidue {
                min_eigenvalue: -0.5,
            },
        };
        assert!(v.to_string().contains("M1"));
        assert!(PassivityVerdict::Passive { strictly: true }
            .to_string()
            .contains("strictly"));
        let reason = NonPassivityReason::ProperPartNotPositiveReal {
            witness_frequency: Some(2.0),
            min_eigenvalue: -0.1,
        };
        assert!(reason.to_string().contains("ω"));
    }

    #[test]
    fn timings_total() {
        let t = StageTimings {
            build_phi: Duration::from_millis(3),
            spectral_split: Duration::from_millis(7),
            ..Default::default()
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }

    #[test]
    fn report_display_mentions_method() {
        let report =
            PassivityReport::new("shh-fast", PassivityVerdict::Passive { strictly: false });
        let text = report.to_string();
        assert!(text.contains("shh-fast"));
        assert!(text.contains("passive"));
    }
}
