//! Offline shim for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment of this repository has no crates-registry access, so
//! this in-tree crate implements exactly the subset of the proptest API the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]` inner
//!   attribute and `arg in strategy` bindings,
//! * [`test_runner::Config::with_cases`] (re-exported in the prelude as
//!   `ProptestConfig`),
//! * range strategies over `u64` / `usize` / `f64` and [`bool::ANY`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: each generated case is drawn
//! from a deterministic per-test stream, and a failing case panics with the
//! values that produced it.  That is sufficient for CI regression detection;
//! the full crate can be swapped back in unchanged if registry access appears.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies for generating values.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of generated values for one test-case argument.
    pub trait Strategy {
        /// The type of the generated values.
        type Value: std::fmt::Debug;
        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for Range<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut StdRng) -> u64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;

        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a generated case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An explicit `prop_assert!` failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(message) => write!(f, "{message}"),
            }
        }
    }
}

/// Deterministic per-test RNG construction used by the [`proptest!`] macro.
pub fn deterministic_rng(test_name: &str, case: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name so every test gets its own stream, mixed with
    // the case index so cases differ.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Defines property tests: each `fn` runs `Config::cases` times with arguments
/// freshly drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::deterministic_rng(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __values = format!(
                        concat!("(", $(concat!(stringify!($arg), " = {:?}, "),)* ")"),
                        $($arg),*
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        panic!(
                            "proptest case {}/{} failed for {}: {}",
                            __case + 1,
                            __config.cases,
                            __values,
                            __err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the generated
/// inputs on failure instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// The most common imports for proptest users.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_are_respected(x in 3u64..9, y in 0.5f64..1.5, n in 1usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((1..4).contains(&n), "n = {} out of range", n);
        }

        #[test]
        fn bools_are_generated(b in crate::bool::ANY) {
            prop_assert!(matches!(b, true | false));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_values() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x = {} is not > 100", x);
            }
        }
        inner();
    }
}
