//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no crates-registry access, so
//! this in-tree crate implements the subset of the criterion API that the
//! `ds-bench` benches use: [`Criterion::benchmark_group`], per-group
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::throughput`],
//! [`BenchmarkGroup::bench_with_input`] with [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is a plain warm-up-then-measure loop around `std::time::Instant`
//! reporting mean / min / max per benchmark — no statistical analysis, HTML
//! reports, or CLI filtering.  It keeps `cargo bench` compiling and producing
//! useful numbers offline; the real crate can be swapped back in unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark context handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts (and ignores) harness CLI arguments; present so that the macro
    /// expansion matches real criterion's.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Identifies one benchmark: a function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id labelled `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Throughput annotation for a group (recorded, reported per element).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured routine processes this many abstract elements per call.
    Elements(u64),
    /// The measured routine processes this many bytes per call.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let id = BenchmarkId { full: id.into() };
        self.report(&id, &bencher.samples);
        self
    }

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("  {}/{}: no samples collected", self.name, id.full);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  ({:.1} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  ({:.1} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "  {}/{}: mean {:?}  min {:?}  max {:?}  ({} samples){}",
            self.name,
            id.full,
            mean,
            min,
            max,
            samples.len(),
            throughput
        );
    }

    /// Ends the group (report output already happened per benchmark).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a callable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default().configure_from_args();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 10), &5u64, |b, input| {
            b.iter(|| {
                calls += 1;
                input + 1
            })
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(1);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn macros_expand() {
        demo_group();
    }
}
