//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no crates-registry access, so
//! this in-tree crate implements exactly the subset of the `rand` 0.8 API that
//! the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open numeric ranges.
//!
//! The generator is a small, well-understood `xoshiro256**` instance seeded by
//! SplitMix64 — deterministic across platforms, which is exactly what the
//! randomized circuit generators need for reproducible test seeds.  It is NOT
//! the same stream as the real `rand::rngs::StdRng` (ChaCha12) and makes no
//! cryptographic claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator core: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next `u64` from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniformly distributed value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 uniformly random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        self.start + rng.next_u64() % span
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

/// High-level sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// Draws a uniformly distributed boolean.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (`xoshiro256**`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }
}
