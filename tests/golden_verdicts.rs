//! Golden-verdict conformance suite: the harness's golden sweep must
//! reproduce `tests/golden/verdicts.json` — verdict, reason slug,
//! violation-frequency count and witness for every (family, order, method)
//! cell — and must do so identically on 1 and 2 threads.
//!
//! Each sweep is checked in both comparison modes: **strict** (the rendered
//! document is byte-for-byte identical to the fixture) and **semantic**
//! (`golden::semantic_diff`: discrete fields exact, witness frequency within
//! a relative tolerance).  Strict implies semantic on an unchanged kernel;
//! running both keeps the semantic comparator itself honest, and after an
//! intentional roundoff-level kernel change the semantic mode is the one
//! that distinguishes "same verdicts, different bits" from real drift.
//!
//! Regenerate the fixture (after an intentional behaviour change) with
//! `cargo run -p ds-harness --bin regen-golden`.

use ds_passivity_suite::harness::golden;
use ds_passivity_suite::harness::json;
use ds_passivity_suite::harness::sweep::{run_sweep, SweepSpec};

const FIXTURE: &str = include_str!("golden/verdicts.json");

/// Points at the first differing line so fixture drift is readable.
fn assert_same(rendered: &str, committed: &str, context: &str) {
    if rendered == committed {
        return;
    }
    for (lineno, (got, want)) in rendered.lines().zip(committed.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "{context}: first drift at line {} — if intentional, regenerate with \
             `cargo run -p ds-harness --bin regen-golden`",
            lineno + 1
        );
    }
    panic!(
        "{context}: artifacts differ in length ({} vs {} lines)",
        rendered.lines().count(),
        committed.lines().count()
    );
}

#[test]
fn golden_sweep_matches_fixture_on_one_and_two_threads() {
    for threads in [1usize, 2] {
        let result = run_sweep(&SweepSpec::new(golden::golden_tasks(), threads));
        // Strict mode: the serialized document is pinned byte-for-byte.
        let rendered = golden::render_golden(&result.records);
        assert_same(&rendered, FIXTURE, &format!("threads={threads}"));
        // Semantic mode on the same records: field-exact verdicts with a
        // tolerance-gated witness must also report equivalence.
        let diffs = golden::semantic_diff(&result.records, FIXTURE, golden::SEMANTIC_REL_TOL);
        assert!(
            diffs.is_empty(),
            "threads={threads}: semantic drift:\n{}",
            diffs.join("\n")
        );
    }
}

#[test]
fn fixture_is_valid_json_and_covers_every_family() {
    let value = json::parse(FIXTURE).expect("fixture must parse");
    assert_eq!(
        value.get("version").and_then(json::Value::as_f64),
        Some(golden::GOLDEN_VERSION as f64)
    );
    let cells = value
        .get("cells")
        .and_then(json::Value::as_array)
        .expect("fixture must have cells");
    assert_eq!(cells.len(), golden::golden_tasks().len());
    for family in [
        "rc_ladder",
        "rlc_ladder",
        "impulsive_ladder",
        "rc_grid",
        "multiport_ladder",
        "multiport_ladder_impulsive",
        "coupled_mesh",
        "tline_chain",
        "perturbed_boundary",
        "boundary_band",
        "deck",
        "nonpassive_ladder",
        "negative_m1",
        "random_passive",
        "random_nonpassive",
        "reduced",
    ] {
        assert!(
            cells
                .iter()
                .any(|c| c.get("family").and_then(json::Value::as_str) == Some(family)),
            "family {family} missing from the fixture"
        );
    }
    // Every cell carries a verdict and a violation count, and the two
    // correlate: passive cells have no violating grid frequency.
    for cell in cells {
        let passive = cell.get("passive").expect("cell has passive");
        let count = cell
            .get("violation_count")
            .and_then(json::Value::as_f64)
            .expect("cell has violation_count");
        if passive == &json::Value::Bool(true) {
            assert_eq!(count, 0.0, "passive cell with violations: {cell:?}");
        }
    }
}

#[test]
fn margin_cells_pin_rejection_reasons() {
    let value = json::parse(FIXTURE).unwrap();
    let cells = value.get("cells").and_then(json::Value::as_array).unwrap();
    let margin_cells: Vec<_> = cells
        .iter()
        .filter(|c| {
            c.get("family").and_then(json::Value::as_str) == Some("perturbed_boundary")
                && c.get("margin").and_then(json::Value::as_f64) > Some(0.0)
        })
        .collect();
    assert!(
        margin_cells.len() >= 2,
        "expected violating near-boundary cells in the fixture"
    );
    for cell in margin_cells {
        assert_eq!(
            cell.get("passive"),
            Some(&json::Value::Bool(false)),
            "margin > 0 must be pinned as rejected: {cell:?}"
        );
        assert!(
            cell.get("violation_count").and_then(json::Value::as_f64) > Some(0.0),
            "margin > 0 must show grid violations: {cell:?}"
        );
    }
}
