//! Parser golden tests: good decks parse to *exact* netlists, bad decks fail
//! with *exact* line/column diagnostics, and every committed example deck
//! parses and validates.

use ds_passivity_suite::circuits::{Element, Netlist, Port};
use ds_passivity_suite::netlist::{parse_deck, ParseError};
use std::path::Path;

#[test]
fn good_deck_parses_to_the_exact_netlist() {
    let deck = parse_deck(
        "* title comment\n\
         R1 in mid 1k        ; series resistor\n\
         Lp mid out 10m\n\
         C1 out 0 2u\n\
         Gleak out gnd 1m\n\
         .port in out\n\
         .end\n",
    )
    .unwrap();
    let mut expected = Netlist::new(3);
    expected.add_named(
        "R1",
        Element::Resistor {
            a: 1,
            b: 2,
            value: 1000.0,
        },
    );
    expected.add_named(
        "LP",
        Element::Inductor {
            a: 2,
            b: 3,
            value: 10e-3,
        },
    );
    expected.add_named(
        "C1",
        Element::Capacitor {
            a: 3,
            b: 0,
            value: 2e-6,
        },
    );
    expected.add_named(
        "GLEAK",
        Element::Conductance {
            a: 3,
            b: 0,
            value: 1e-3,
        },
    );
    expected.port(Port {
        node_plus: 1,
        node_minus: 3,
    });
    assert_eq!(deck.netlist, expected);
    assert_eq!(deck.node_names, vec!["IN", "MID", "OUT"]);
    assert_eq!(deck.expect, None);
}

#[test]
fn continuations_and_coupling_parse_exactly() {
    let deck = parse_deck(
        "L1 a 0\n\
         + 1.5\n\
         L2 b 0 2.5\n\
         K1 L1\n\
         +  L2  0.25\n\
         R1 a b 4\n\
         .port a\n",
    )
    .unwrap();
    let mut expected = Netlist::new(2);
    expected.named_inductor("L1", 1, 0, 1.5);
    expected.named_inductor("L2", 2, 0, 2.5);
    expected.couple("K1", "L1", "L2", 0.25);
    // Element order is line order: couplings live in their own list.
    expected.elements.insert(
        2,
        Element::Resistor {
            a: 1,
            b: 2,
            value: 4.0,
        },
    );
    expected.labels.insert(2, "R1".to_string());
    expected.port(Port::to_ground(1));
    assert_eq!(deck.netlist, expected);
}

/// Asserts the parse fails exactly at `(line, col)` with a message containing
/// `needle`.
fn assert_fails_at(source: &str, line: usize, col: usize, needle: &str) {
    let err: ParseError = parse_deck(source).unwrap_err();
    assert_eq!(
        (err.line, err.col),
        (line, col),
        "wrong position for {source:?}: got {err}"
    );
    assert!(
        err.message.contains(needle),
        "error for {source:?} should mention {needle:?}, got: {err}"
    );
}

#[test]
fn bad_decks_report_exact_positions() {
    // Unsupported element type, line 2 col 1.
    assert_fails_at("R1 a 0 1\nV1 a 0 5\n.port a\n", 2, 1, "unsupported element");
    // Bad value token: line 1, col 8 (the value field).
    assert_fails_at("R1 a 0 bogus\n.port a\n", 1, 8, "invalid numeric value");
    // Negative inductance: the value token of line 2 (col 9).
    assert_fails_at(
        "R1 a 0 1\nL1 a 0  -2m\n.port a\n",
        2,
        9,
        "inductance must be positive",
    );
    // Coupling coefficient out of range: line 3 col 10.
    assert_fails_at(
        "L1 a 0 1\nL2 b 0 1\nK1 L1 L2 1.5\nR1 a b 1\n.port a\n",
        3,
        10,
        "|k| ≤ 1",
    );
    // Unknown coupling target: reported at the K line, netlist-level message.
    assert_fails_at(
        "L1 a 0 1\nR1 a 0 1\nK1 L1 L9 0.5\n.port a\n",
        3,
        1,
        "unknown inductor 'L9'",
    );
    // Duplicate element name, at the re-definition.
    assert_fails_at(
        "R1 a 0 1\nr1 b 0 2\n.port a\n",
        2,
        1,
        "duplicate element name 'R1'",
    );
    // Wrong field count: too many tokens → the first extra token.
    assert_fails_at("R1 a 0 1 junk\n.port a\n", 1, 10, "unexpected token 'junk'");
    // Too few tokens → the element name.
    assert_fails_at("C1 a 0\n.port a\n", 1, 1, "expects 3 fields");
    // Unknown directive.
    assert_fails_at("R1 a 0 1\n.bogus x\n.port a\n", 2, 1, "unknown directive");
    // Continuation with nothing to continue (indented + is still col of '+').
    assert_fails_at(
        "* only a comment\n  + 1 2 3\nR1 a 0 1\n.port a\n",
        2,
        3,
        "continuation",
    );
    // Content after .end.
    assert_fails_at(
        "R1 a 0 1\n.port a\n.end\nR2 b 0 1\n",
        4,
        1,
        "content after .end",
    );
    // Missing ports.
    assert_fails_at("R1 a 0 1\n.end\n", 2, 1, "no .port directive");
    // Shorted element (same node twice).
    assert_fails_at("R1 a a 1\n.port a\n", 1, 1, "shorted");
    // Bad .expect argument.
    assert_fails_at(
        "R1 a 0 1\n.port a\n.expect maybe\n",
        3,
        9,
        "unknown .expect argument",
    );
    // Duplicate coupling pair, reported at the second K line.
    assert_fails_at(
        "L1 a 0 1\nL2 b 0 1\nK1 L1 L2 0.5\nK2 L2 L1 0.1\nR1 a b 1\n.port a\n",
        4,
        1,
        "duplicate coupling",
    );
    // Empty deck.
    assert_fails_at("* nothing here\n", 1, 1, "no netlist lines");
}

#[test]
fn every_committed_example_deck_parses_and_validates() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/decks");
    let mut count = 0usize;
    for entry in std::fs::read_dir(&dir).expect("examples/decks exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "cir") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let deck =
            parse_deck(&text).unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        deck.netlist
            .validate()
            .unwrap_or_else(|e| panic!("{} failed to validate: {e}", path.display()));
        // Canonical text is a parse↔render fixed point for every deck.
        let canon = deck.canonical_text();
        let reparsed = parse_deck(&canon).unwrap();
        assert_eq!(reparsed.netlist, deck.netlist, "{}", path.display());
        assert_eq!(reparsed.canonical_text(), canon, "{}", path.display());
        count += 1;
    }
    assert!(count >= 4, "expected ≥ 4 committed decks, found {count}");
}
