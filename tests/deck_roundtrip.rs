//! Property test: deck print ↔ parse round-trip.
//!
//! Randomized netlists (type-prefixed labels, nodes introduced in
//! first-appearance order — i.e. already in canonical numbering) must render
//! to a deck whose parse reproduces the netlist *exactly*, and the canonical
//! text must be a fixed point of `parse ∘ render`.

use ds_passivity_suite::circuits::{Netlist, Port};
use ds_passivity_suite::netlist::{parse_deck, render_netlist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random netlist whose node indices coincide with first-appearance
/// order (so rendering does not renumber it).
fn random_netlist(seed: u64) -> (Netlist, Option<bool>) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n_elements = rng.gen_range(1usize..12);
    let mut net = Netlist::new(0);
    let mut max_node = 0usize;
    let mut inductors: Vec<String> = Vec::new();
    for i in 0..n_elements {
        // Terminal a: an existing node (or ground once nodes exist); terminal
        // b: a brand-new node (keeping first-appearance = index order) or an
        // existing distinct node.
        let a = if max_node == 0 {
            max_node += 1;
            max_node
        } else {
            rng.gen_range(0..max_node + 1)
        };
        let b = if max_node == 0 || rng.gen_bool(0.6) {
            max_node += 1;
            max_node
        } else {
            // Existing node distinct from a (ground allowed unless a is 0).
            loop {
                let candidate = rng.gen_range(0..max_node + 1);
                if candidate != a {
                    break candidate;
                }
            }
        };
        match rng.gen_range(0usize..4) {
            0 => {
                let magnitude = rng.gen_range(0.1..10.0);
                let value = if rng.gen_bool(0.2) {
                    -magnitude
                } else {
                    magnitude
                };
                net.add_named(
                    format!("R{i}"),
                    ds_passivity_suite::circuits::Element::Resistor { a, b, value },
                );
            }
            1 => {
                net.add_named(
                    format!("C{i}"),
                    ds_passivity_suite::circuits::Element::Capacitor {
                        a,
                        b,
                        value: rng.gen_range(0.01..5.0),
                    },
                );
            }
            2 => {
                let label = format!("L{i}");
                inductors.push(label.clone());
                net.add_named(
                    label,
                    ds_passivity_suite::circuits::Element::Inductor {
                        a,
                        b,
                        value: rng.gen_range(0.01..5.0),
                    },
                );
            }
            _ => {
                let magnitude = rng.gen_range(0.01..2.0);
                let value = if rng.gen_bool(0.2) {
                    -magnitude
                } else {
                    magnitude
                };
                net.add_named(
                    format!("G{i}"),
                    ds_passivity_suite::circuits::Element::Conductance { a, b, value },
                );
            }
        }
    }
    net.num_nodes = max_node;
    // Couplings over distinct inductor pairs, each pair at most once.
    if inductors.len() >= 2 {
        let n_couplings = rng.gen_range(0usize..inductors.len().min(3) + 1);
        let mut used: Vec<(usize, usize)> = Vec::new();
        for c in 0..n_couplings {
            let p = rng.gen_range(0..inductors.len());
            let q = rng.gen_range(0..inductors.len());
            let pair = (p.min(q), p.max(q));
            if p == q || used.contains(&pair) {
                continue;
            }
            used.push(pair);
            net.couple(
                format!("K{c}"),
                inductors[p].clone(),
                inductors[q].clone(),
                rng.gen_range(-1.0..1.0),
            );
        }
    }
    for _ in 0..rng.gen_range(1usize..3) {
        net.port(Port::to_ground(rng.gen_range(1..max_node + 1)));
    }
    let expect = match rng.gen_range(0usize..3) {
        0 => Some(true),
        1 => Some(false),
        _ => None,
    };
    (net, expect)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deck_print_parse_roundtrip(seed in 0u64..100_000) {
        let (net, expect) = random_netlist(seed);
        prop_assert!(net.validate().is_ok(), "generated netlist invalid (seed {})", seed);
        let canon = render_netlist(&net, expect);
        let deck = match parse_deck(&canon) {
            Ok(deck) => deck,
            Err(e) => return Err(TestCaseError::fail(format!(
                "seed {seed}: canonical text failed to parse: {e}\n{canon}"
            ))),
        };
        prop_assert_eq!(&deck.netlist, &net);
        prop_assert_eq!(deck.expect, expect);
        // Fixed point: rendering the parsed netlist reproduces the text.
        prop_assert_eq!(&deck.canonical_text(), &canon);
    }
}
