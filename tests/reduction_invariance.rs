//! The structure-preserving reductions of the proposed test must preserve the
//! transfer function `Φ(s) = G(s) + G~(s)` at every stage, and the final
//! regularized pencil must carry the advertised Hamiltonian structure.

use ds_circuits::generators;
use ds_descriptor::transfer;
use ds_passivity::{proper, reduction};
use ds_shh::pencil::build_phi;
use ds_shh::structure;

fn phi_invariance_for(system: &ds_descriptor::DescriptorSystem) {
    let phi = build_phi(system).unwrap();
    let cancelled = reduction::cancel_impulsive_modes(&phi, 1e-9).unwrap();
    let nondynamic = reduction::remove_nondynamic_modes(&cancelled.reduced, 1e-9).unwrap();
    assert!(nondynamic.impulse_free, "passive model must reduce cleanly");
    let restored = reduction::restore_shh(&nondynamic.reduced).unwrap();

    for &w in &[0.0, 0.3, 2.0, 25.0] {
        let reference = transfer::evaluate_jomega(&phi.system, w).unwrap();
        for (stage, sys) in [
            ("impulse cancellation", &cancelled.reduced),
            ("nondynamic removal", &nondynamic.reduced),
            ("SHH restoration", &restored.system),
        ] {
            if sys.order() == 0 {
                continue;
            }
            let value = transfer::evaluate_jomega(sys, w).unwrap();
            let dev = reference.sub(&value).norm_max();
            assert!(
                dev < 1e-7 * (1.0 + reference.norm_max()),
                "Φ changed by {dev} after {stage} at ω = {w}"
            );
        }
    }

    // Structural guarantees along the chain.
    let scale = phi.system.scale();
    assert!(cancelled.reduced.e().is_skew_symmetric(1e-8 * scale));
    assert!(cancelled.reduced.a().is_symmetric(1e-8 * scale));
    if restored.system.order() > 0 {
        assert!(structure::is_skew_hamiltonian(restored.system.e(), 1e-8 * scale).unwrap());
        assert!(structure::is_hamiltonian(restored.system.a(), 1e-8 * scale).unwrap());
        let regular = proper::regularize(&restored.system, 1e-9).unwrap();
        assert!(
            structure::is_hamiltonian(&regular.a44, 1e-6 * regular.a44.norm_fro().max(1.0))
                .unwrap()
        );
    }
}

#[test]
fn phi_invariance_on_proper_ladder() {
    let model = generators::rc_ladder(5, 1.0, 1.0).unwrap();
    phi_invariance_for(&model.system);
}

#[test]
fn phi_invariance_on_impulsive_ladder() {
    let model = generators::rlc_ladder_with_impulsive(12).unwrap();
    phi_invariance_for(&model.system);
}

#[test]
fn phi_invariance_on_two_port_grid() {
    let model = generators::rc_grid(3, 3).unwrap();
    phi_invariance_for(&model.system);
}

#[test]
fn phi_invariance_on_rlc_ladder() {
    let model = generators::rlc_ladder(4, 0.5, 0.3, 2.0).unwrap();
    phi_invariance_for(&model.system);
}
