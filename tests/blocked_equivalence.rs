//! Compact-WY blocked kernel conformance: the blocked Hessenberg and QR
//! sweeps must agree with the unblocked ones on everything spectral.
//!
//! Blocking changes the floating-point operation *order* (panel updates land
//! as accumulated `I − V·T·Vᵀ` matmuls instead of rank-1 sweeps), so unlike
//! `tests/schur_equivalence.rs` the agreement demanded here is within
//! tolerance, not bit-for-bit.  At the orders tested (2..60) the production
//! entry points route to the unblocked sweep, so forcing the blocked kernel
//! through its `_blocked` doors gives an exact unblocked-vs-blocked pairing
//! on the same input — including the defective Jordan chains and rotation
//! blocks that stress the downstream QR iteration hardest.

use ds_linalg::decomp::{hessenberg, qr};
use ds_linalg::eigen;
use ds_linalg::workspace::ReflectorScratch;
use ds_linalg::{Complex, Matrix};
use proptest::prelude::*;

/// Sorts eigenvalues by (re, im) for a stable pairing.
fn sorted(mut eigs: Vec<Complex>) -> Vec<Complex> {
    eigs.sort_by(|a, b| {
        a.re.partial_cmp(&b.re)
            .unwrap()
            .then(a.im.partial_cmp(&b.im).unwrap())
    });
    eigs
}

/// `eig_tol` is the eigenvalue agreement bound: roundoff-level reordering of
/// the reduction arithmetic perturbs a defective eigenvalue by O(ε^{1/k}) for
/// a length-k Jordan chain, so defective fixtures must pass a chain-aware
/// tolerance while well-separated spectra use a tight one.
fn assert_blocked_paths_agree(a: &Matrix, eig_tol: f64) {
    let n = a.rows();
    let scale = a.norm_fro().max(1.0);
    let tol = 1e-8 * scale;

    // Hessenberg: unblocked (what `reduce_in` picks below BLOCKED_MIN_DIM)
    // against the forced blocked sweep.
    let mut scratch = ReflectorScratch::new();
    let mut h_ref = a.clone();
    let mut q_ref = Matrix::zeros(0, 0);
    hessenberg::reduce_in(&mut h_ref, Some(&mut q_ref), &mut scratch).unwrap();
    let mut h_blk = a.clone();
    let mut q_blk = Matrix::zeros(0, 0);
    hessenberg::reduce_blocked_in(&mut h_blk, Some(&mut q_blk), &mut scratch).unwrap();
    // Both are orthogonal similarity transforms of `a`...
    let residual = &(&(&q_blk * &h_blk) * &q_blk.transpose()) - a;
    assert!(
        residual.norm_max() <= tol,
        "blocked Hessenberg does not reproduce A: residual {:.2e}",
        residual.norm_max()
    );
    // ...so the spectra must match within tolerance.
    let eig_ref = sorted(eigen::eigenvalues(&h_ref).unwrap());
    let eig_blk = sorted(eigen::eigenvalues(&h_blk).unwrap());
    assert_eq!(eig_ref.len(), eig_blk.len());
    for (x, y) in eig_ref.iter().zip(eig_blk.iter()) {
        assert!(
            (x.re - y.re).abs() <= eig_tol * scale && (x.im - y.im).abs() <= eig_tol * scale,
            "eigenvalue drift between unblocked and blocked Hessenberg: \
             ({}, {}) vs ({}, {})",
            x.re,
            x.im,
            y.re,
            y.im
        );
    }

    // QR: both factorizations must reconstruct A with an orthogonal Q and
    // agree on the triangular factor's diagonal magnitudes (the factorization
    // is unique up to column signs).
    let reference = qr::factor_full(a);
    let blocked = qr::factor_full_blocked(a);
    let recon = &blocked.q * &blocked.r;
    assert!(
        (&recon - a).norm_max() <= tol,
        "blocked QR does not reconstruct A"
    );
    let qtq = blocked.q.transpose_matmul(&blocked.q).unwrap();
    assert!(
        (&qtq - &Matrix::identity(n)).norm_max() <= 1e-10,
        "blocked QR lost orthogonality"
    );
    for i in 0..n {
        assert!(
            (reference.r[(i, i)].abs() - blocked.r[(i, i)].abs()).abs() <= tol,
            "R diagonal drift at {i}: {} vs {}",
            reference.r[(i, i)],
            blocked.r[(i, i)]
        );
    }
}

#[test]
fn defective_jordan_blocks() {
    for n in [3usize, 6, 9, 17] {
        // A length-n chain turns an ε-level backward error into an ε^{1/n}
        // eigenvalue shift; give one order of magnitude of slack on top.
        let eig_tol = 10.0 * f64::EPSILON.powf(1.0 / n as f64);
        let mut a = Matrix::identity(n).scale(2.0);
        for i in 0..n - 1 {
            a[(i, i + 1)] = 1.0;
        }
        assert_blocked_paths_agree(&a, eig_tol);
        // A similarity-hidden variant of the same chain.
        let t = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else {
                0.05 * ((i + 2 * j) % 3) as f64
            }
        });
        let t_inv = ds_linalg::decomp::lu::inverse(&t).unwrap();
        let hidden = &(&t * &a) * &t_inv;
        assert_blocked_paths_agree(&hidden, eig_tol);
    }
}

#[test]
fn rotation_like_complex_pairs() {
    let blocks: Vec<Matrix> = (1..8)
        .map(|k| {
            let w = k as f64 * 0.7;
            Matrix::from_rows(&[&[0.1 * k as f64, w], &[-w, 0.1 * k as f64]])
        })
        .collect();
    let refs: Vec<&Matrix> = blocks.iter().collect();
    let a = Matrix::block_diag(&refs);
    assert_blocked_paths_agree(&a, 1e-6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn equivalence_over_random_orders(order in 2usize..61, seed in 0u64..1000) {
        let a = Matrix::from_fn(order, order, |i, j| {
            let base = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
                .wrapping_add(seed);
            let mixed = base ^ (base >> 33);
            (mixed % 1000) as f64 / 500.0 - 1.0 + if i == j { 0.5 } else { 0.0 }
        });
        // Random matrices can have near-multiple eigenvalues; allow the same
        // clustering slack the proptest in tests/schur_equivalence.rs relies
        // on bit-identity to avoid.
        assert_blocked_paths_agree(&a, 1e-4);
    }
}
