//! Property-based tests: randomized passive descriptor systems must always be
//! accepted by the proposed test, randomized non-passive ones must be rejected,
//! randomized ladder parameters must never break the reduction pipeline, and
//! the multiport / near-boundary scenario space (ports in 1..4, violation
//! margin ≥ 0) must behave exactly as constructed: margin > 0 always
//! rejected, margin = 0 always passive.

use ds_circuits::generators;
use ds_circuits::multiport;
use ds_circuits::random::{
    random_nonpassive_descriptor, random_passive_descriptor, RandomPassiveOptions,
};
use ds_passivity::fast::{check_passivity, FastTestOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_passive_systems_are_accepted(
        seed in 0u64..500,
        dynamic in 2usize..7,
        nondynamic in 0usize..3,
        impulsive in proptest::bool::ANY,
    ) {
        let options = RandomPassiveOptions {
            dynamic_states: dynamic,
            nondynamic_states: nondynamic,
            ports: 1,
            with_impulsive_part: impulsive,
            feedthrough: 0.4,
        };
        let sys = random_passive_descriptor(&options, seed).unwrap();
        let report = check_passivity(&sys, &FastTestOptions::default()).unwrap();
        prop_assert!(
            report.verdict.is_passive(),
            "seed {} rejected: {}", seed, report.verdict
        );
    }

    #[test]
    fn random_nonpassive_systems_are_rejected(seed in 0u64..200) {
        let sys = random_nonpassive_descriptor(&RandomPassiveOptions::default(), seed).unwrap();
        // The construction makes non-passivity overwhelmingly likely but not
        // certain; cross-check against a dense frequency sweep of the Popov
        // function and only require rejection when a violation truly exists.
        let mut violated = false;
        for &w in &[0.0, 0.1, 0.3, 0.7, 1.5, 3.0, 7.0, 20.0, 100.0] {
            let g = ds_descriptor::transfer::evaluate_jomega(&sys, w).unwrap();
            if g.popov_min_eigenvalue().unwrap() < -1e-7 {
                violated = true;
                break;
            }
        }
        let report = check_passivity(&sys, &FastTestOptions::default()).unwrap();
        if violated {
            prop_assert!(!report.verdict.is_passive(), "seed {} accepted a non-passive system", seed);
        }
    }

    #[test]
    fn ladder_generators_always_yield_testable_models(
        sections in 1usize..6,
        r in 0.1f64..10.0,
        l in 0.01f64..2.0,
        c in 0.1f64..5.0,
    ) {
        let model = generators::rlc_ladder(sections, r, l, c).unwrap();
        prop_assert!(model.system.is_regular(1e-10).unwrap());
        let report = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
        prop_assert!(report.verdict.is_passive());
    }

    #[test]
    fn multiport_ladders_are_accepted_for_all_port_counts(
        ports in 1usize..4,
        sections in 1usize..4,
        impulsive in proptest::bool::ANY,
    ) {
        let model = multiport::multiport_rlc_ladder(ports, sections, impulsive).unwrap();
        prop_assert_eq!(model.system.num_inputs(), ports);
        prop_assert!(model.system.is_regular(1e-10).unwrap());
        let report = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
        prop_assert!(
            report.verdict.is_passive(),
            "ports={} sections={} impulsive={}: {}",
            ports, sections, impulsive, report.verdict
        );
        if impulsive {
            prop_assert!(report.diagnostics.removed_impulse_states > 0);
        }
    }

    #[test]
    fn coupled_meshes_are_accepted_for_all_couplings(
        edge in 2usize..4,
        coupling in 0.0f64..0.9,
    ) {
        let model = multiport::coupled_inductor_mesh(edge, edge, coupling).unwrap();
        let report = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
        prop_assert!(
            report.verdict.is_passive(),
            "edge={} coupling={}: {}",
            edge, coupling, report.verdict
        );
    }

    #[test]
    fn perturbed_model_with_positive_margin_is_always_rejected(
        dynamic in 3usize..7,
        ports in 1usize..4,
        margin in 0.05f64..1.0,
        seed in 0u64..200,
    ) {
        let model = multiport::perturbed_boundary_model(dynamic, ports, margin, seed).unwrap();
        prop_assert!(!model.expected_passive);
        let report = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
        prop_assert!(
            !report.verdict.is_passive(),
            "margin {} (seed {}) was accepted", margin, seed
        );
    }

    #[test]
    fn perturbed_model_with_zero_margin_stays_passive(
        dynamic in 3usize..7,
        ports in 1usize..4,
        seed in 0u64..200,
    ) {
        let model = multiport::perturbed_boundary_model(dynamic, ports, 0.0, seed).unwrap();
        prop_assert!(model.expected_passive);
        let report = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
        prop_assert!(
            report.verdict.is_passive(),
            "boundary model (seed {}) was rejected: {}", seed, report.verdict
        );
    }
}

#[test]
fn impulsive_orders_sweep() {
    for order in (6..=24).step_by(2) {
        let model = generators::rlc_ladder_with_impulsive(order).unwrap();
        let report = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
        assert!(
            report.verdict.is_passive(),
            "order {order}: {}",
            report.verdict
        );
        assert!(report.diagnostics.removed_impulse_states > 0);
    }
}
