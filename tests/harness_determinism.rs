//! Shard-order independence: the same sweep spec run on 1 thread and on N
//! threads must produce byte-identical sorted JSONL output, and the
//! deterministic CSV columns must match as well (only timings and worker ids
//! may differ between runs).

use ds_passivity_suite::harness::prelude::*;
use ds_passivity_suite::harness::{render_csv, render_jsonl};

fn spec(threads: usize) -> SweepSpec {
    let tasks = scenario_matrix(&quick_scenarios(), &[Method::Proposed, Method::Weierstrass]);
    SweepSpec::new(tasks, threads)
}

/// Strips the nondeterministic trailing columns (reduction_ns,
/// elapsed_seconds, worker) from a CSV artifact.
fn deterministic_csv(text: &str) -> String {
    text.lines()
        .map(|line| {
            let fields: Vec<&str> = line.split(',').collect();
            fields[..fields.len().saturating_sub(3)].join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn sorted_jsonl_is_byte_identical_across_thread_counts() {
    let single = run_sweep(&spec(1));
    assert_eq!(single.threads, 1);
    let baseline = render_jsonl(&single.records);
    assert!(!baseline.is_empty());
    for threads in [2usize, 4, 8] {
        let multi = run_sweep(&spec(threads));
        let rendered = render_jsonl(&multi.records);
        assert_eq!(
            rendered, baseline,
            "JSONL diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn csv_deterministic_columns_match_across_thread_counts() {
    let single = run_sweep(&spec(1));
    let multi = run_sweep(&spec(4));
    assert_eq!(
        deterministic_csv(&render_csv(&single.records)),
        deterministic_csv(&render_csv(&multi.records)),
    );
}

#[test]
fn repeated_runs_are_reproducible() {
    // Determinism also holds run-to-run with the same thread count (no
    // hidden global state, no time- or address-dependent output).
    let a = render_jsonl(&run_sweep(&spec(3)).records);
    let b = render_jsonl(&run_sweep(&spec(3)).records);
    assert_eq!(a, b);
}
