//! The "sidetrack" deliverable: the stable proper part extracted by the SHH
//! flow must match the proper part of the Weierstrass additive decomposition
//! (up to the skew-symmetric constant that the Φ-based route cannot observe).

use ds_circuits::generators;
use ds_descriptor::transfer;
use ds_descriptor::weierstrass::{decompose, WeierstrassOptions};
use ds_passivity::fast::{check_passivity, FastTestOptions};

fn check_model(system: &ds_descriptor::DescriptorSystem) {
    let report = check_passivity(system, &FastTestOptions::default()).unwrap();
    assert!(report.verdict.is_passive());
    let shh_proper = report.proper_part.expect("proper part");
    let weier = decompose(system, &WeierstrassOptions::default()).unwrap();

    // Same dynamic order.
    assert_eq!(shh_proper.order(), weier.finite_dim);

    // The Hermitian part of both proper parts on the imaginary axis must match
    // the Hermitian part of G itself (the polynomial term s·M1 is skew there).
    for &w in &[0.0, 0.2, 1.0, 5.0, 50.0] {
        let g = transfer::evaluate_jomega(system, w).unwrap();
        let shh = transfer::evaluate_jomega(&shh_proper.to_descriptor(), w).unwrap();
        let weier_value = transfer::evaluate_jomega(&weier.proper.to_descriptor(), w).unwrap();
        let herm_g = &g.re + &g.re.transpose();
        let herm_shh = &shh.re + &shh.re.transpose();
        let herm_weier = &weier_value.re + &weier_value.re.transpose();
        let scale = 1.0 + herm_g.norm_max();
        assert!(
            herm_g.approx_eq(&herm_shh, 1e-6 * scale),
            "SHH proper part deviates at ω = {w}"
        );
        assert!(
            herm_g.approx_eq(&herm_weier, 1e-6 * scale),
            "Weierstrass proper part deviates at ω = {w}"
        );
    }

    // Both proper parts are stable.
    assert!(shh_proper.is_stable(1e-10).unwrap());
    assert!(weier.proper.order() == 0 || weier.proper.is_stable(1e-10).unwrap());
}

#[test]
fn proper_part_consistency_impulsive_ladder() {
    let model = generators::rlc_ladder_with_impulsive(12).unwrap();
    check_model(&model.system);
}

#[test]
fn proper_part_consistency_proper_ladder() {
    let model = generators::rc_ladder(6, 2.0, 0.5).unwrap();
    check_model(&model.system);
}

#[test]
fn proper_part_consistency_two_port() {
    let model = generators::rc_grid(2, 3).unwrap();
    check_model(&model.system);
}

#[test]
fn m1_matches_high_frequency_sampling() {
    let model = generators::rlc_ladder_with_impulsive(14).unwrap();
    let report = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
    let m1 = report.m1.unwrap();
    let sampled = transfer::sample_m1(&model.system, 1e5).unwrap();
    assert!(
        (m1[(0, 0)] - sampled[(0, 0)]).abs() < 1e-4 * sampled[(0, 0)].abs().max(1.0),
        "chain-based M1 {} vs sampled {}",
        m1[(0, 0)],
        sampled[(0, 0)]
    );
}
