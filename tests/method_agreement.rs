//! EXP-V1: the three passivity tests must agree (and match the construction
//! ground truth) on the circuit-model families used throughout the paper,
//! including the multiport / coupled-mesh / transmission-line / near-boundary
//! families added for the sweep harness.

use ds_circuits::generators::{self, CircuitModel};
use ds_circuits::multiport;
use ds_lmi::positive_real_lmi::LmiOptions;
use ds_passivity::fast::{check_passivity, FastTestOptions};
use ds_passivity::lmi_test::{check_passivity_lmi, LmiTestOptions};
use ds_passivity::weierstrass_test::{check_passivity_weierstrass, WeierstrassTestOptions};

fn passive_models() -> Vec<CircuitModel> {
    vec![
        generators::rc_ladder(6, 1.0, 1.0).unwrap(),
        generators::rlc_ladder(4, 1.0, 0.5, 1.0).unwrap(),
        generators::rlc_ladder_with_impulsive(10).unwrap(),
        generators::rlc_ladder_with_impulsive(16).unwrap(),
        generators::rc_grid(3, 3).unwrap(),
        multiport::multiport_rlc_ladder(2, 3, false).unwrap(),
        multiport::multiport_rlc_ladder(3, 2, true).unwrap(),
        multiport::coupled_inductor_mesh(3, 3, 0.4).unwrap(),
        multiport::lossy_tline_chain(4).unwrap(),
        multiport::perturbed_boundary_model(5, 2, 0.0, 3).unwrap(),
    ]
}

fn nonpassive_models() -> Vec<CircuitModel> {
    vec![
        generators::nonpassive_ladder(8).unwrap(),
        generators::negative_m1_model(8).unwrap(),
        multiport::perturbed_boundary_model(5, 2, 0.3, 3).unwrap(),
        multiport::perturbed_boundary_model(6, 1, 0.05, 9).unwrap(),
    ]
}

#[test]
fn proposed_and_weierstrass_agree_on_passive_models() {
    for model in passive_models() {
        let fast = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
        let weier =
            check_passivity_weierstrass(&model.system, &WeierstrassTestOptions::default()).unwrap();
        assert!(
            fast.verdict.is_passive(),
            "{}: proposed says {}",
            model.name,
            fast.verdict
        );
        assert!(
            weier.verdict.is_passive(),
            "{}: weierstrass says {}",
            model.name,
            weier.verdict
        );
    }
}

#[test]
fn proposed_and_weierstrass_agree_on_nonpassive_models() {
    for model in nonpassive_models() {
        let fast = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
        let weier =
            check_passivity_weierstrass(&model.system, &WeierstrassTestOptions::default()).unwrap();
        assert!(
            !fast.verdict.is_passive(),
            "{}: proposed wrongly accepts",
            model.name
        );
        assert!(
            !weier.verdict.is_passive(),
            "{}: weierstrass wrongly accepts",
            model.name
        );
    }
}

#[test]
fn lmi_baseline_agrees_on_small_models() {
    // The LMI baseline is only exercised at small orders (it is the expensive
    // method the paper's Table 1 shows blowing up).
    let passive = generators::rc_ladder(4, 1.0, 1.0).unwrap();
    let report = check_passivity_lmi(
        &passive.system,
        &LmiTestOptions {
            lmi: LmiOptions::default(),
        },
    )
    .unwrap();
    assert!(report.verdict.is_passive());

    let nonpassive = generators::nonpassive_ladder(6).unwrap();
    let report = check_passivity_lmi(
        &nonpassive.system,
        &LmiTestOptions {
            lmi: LmiOptions {
                max_iterations: 1500,
                ..LmiOptions::default()
            },
        },
    )
    .unwrap();
    assert!(!report.verdict.is_passive());
}

#[test]
fn lmi_baseline_agrees_on_multiport_and_coupled_models() {
    // The new generator families exercised on the (expensive) LMI baseline at
    // small orders: multiport ladder, coupled-inductor mesh, near-boundary.
    let options = LmiTestOptions {
        lmi: LmiOptions::default(),
    };
    for model in [
        multiport::multiport_rlc_ladder(2, 2, false).unwrap(),
        multiport::coupled_inductor_mesh(2, 2, 0.3).unwrap(),
        multiport::perturbed_boundary_model(4, 1, 0.0, 5).unwrap(),
    ] {
        let report = check_passivity_lmi(&model.system, &options).unwrap();
        assert!(
            report.verdict.is_passive(),
            "{}: lmi wrongly rejects",
            model.name
        );
    }
    let violating = multiport::perturbed_boundary_model(4, 1, 0.4, 5).unwrap();
    let report = check_passivity_lmi(&violating.system, &options).unwrap();
    assert!(
        !report.verdict.is_passive(),
        "{}: lmi wrongly accepts",
        violating.name
    );
}

#[test]
fn m1_agrees_between_methods_on_multiport_impulsive_model() {
    // Both routes must extract the same (matrix-valued) M1 on a 2-port model
    // with one series port inductor per port.
    let model = multiport::multiport_rlc_ladder(2, 2, true).unwrap();
    let fast = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
    let weier =
        check_passivity_weierstrass(&model.system, &WeierstrassTestOptions::default()).unwrap();
    let m1_fast = fast.m1.unwrap();
    let m1_weier = weier.m1.unwrap();
    for i in 0..2 {
        for j in 0..2 {
            assert!(
                (m1_fast[(i, j)] - m1_weier[(i, j)]).abs() < 1e-6 * m1_fast[(i, i)].abs().max(1.0),
                "M1[{i},{j}] mismatch: {} vs {}",
                m1_fast[(i, j)],
                m1_weier[(i, j)]
            );
        }
    }
    // The diagonal carries the two port inductances.
    assert!(m1_fast[(0, 0)] > 0.3 && m1_fast[(1, 1)] > 0.3);
}

#[test]
fn m1_agrees_between_methods_on_impulsive_model() {
    let model = generators::rlc_ladder_with_impulsive(12).unwrap();
    let fast = check_passivity(&model.system, &FastTestOptions::default()).unwrap();
    let weier =
        check_passivity_weierstrass(&model.system, &WeierstrassTestOptions::default()).unwrap();
    let m1_fast = fast.m1.unwrap();
    let m1_weier = weier.m1.unwrap();
    assert!(
        (m1_fast[(0, 0)] - m1_weier[(0, 0)]).abs() < 1e-6 * m1_fast[(0, 0)].abs().max(1.0),
        "M1 mismatch: {} vs {}",
        m1_fast[(0, 0)],
        m1_weier[(0, 0)]
    );
}
