//! Sparse-stamp conformance: `mna::stamp_sparse` must agree with the dense
//! `mna::stamp` *bit-for-bit* after densification — same matrices, same
//! rejections — over randomized netlists covering every element family
//! (R/L/C/G, grounded and floating terminals, negative values) and `K`
//! mutual-inductance couplings, plus the committed example-deck corpus.
//!
//! Bit-identity (not approximate equality) is the contract that lets the
//! reduce-then-verify path share validation semantics with the dense
//! pipeline: any drift in accumulation order would surface here first.

use ds_passivity_suite::circuits::{mna, Element, Netlist, Port};
use ds_passivity_suite::descriptor::DescriptorSystem;
use ds_passivity_suite::netlist::parse_deck;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// Builds a random netlist exercising all element kinds, repeated parallel
/// elements (duplicate-entry accumulation), floating branches, negative
/// values, and couplings (some of which drive the inductance block
/// indefinite, so the *rejection* paths are compared too).
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n_elements = rng.gen_range(1usize..14);
    let mut net = Netlist::new(0);
    let mut max_node = 0usize;
    let mut inductors: Vec<String> = Vec::new();
    for i in 0..n_elements {
        let a = if max_node == 0 {
            max_node += 1;
            max_node
        } else {
            rng.gen_range(0..max_node + 1)
        };
        let b = if max_node == 0 || rng.gen_bool(0.5) {
            max_node += 1;
            max_node
        } else {
            loop {
                let candidate = rng.gen_range(0..max_node + 1);
                if candidate != a {
                    break candidate;
                }
            }
        };
        match rng.gen_range(0usize..4) {
            0 => {
                let magnitude = rng.gen_range(0.1..10.0);
                let value = if rng.gen_bool(0.2) {
                    -magnitude
                } else {
                    magnitude
                };
                net.add_named(format!("R{i}"), Element::Resistor { a, b, value });
            }
            1 => {
                net.add_named(
                    format!("C{i}"),
                    Element::Capacitor {
                        a,
                        b,
                        value: rng.gen_range(0.01..5.0),
                    },
                );
            }
            2 => {
                let label = format!("L{i}");
                inductors.push(label.clone());
                net.add_named(
                    label,
                    Element::Inductor {
                        a,
                        b,
                        value: rng.gen_range(0.01..5.0),
                    },
                );
            }
            _ => {
                let magnitude = rng.gen_range(0.01..2.0);
                let value = if rng.gen_bool(0.2) {
                    -magnitude
                } else {
                    magnitude
                };
                net.add_named(format!("G{i}"), Element::Conductance { a, b, value });
            }
        }
    }
    net.num_nodes = max_node;
    if inductors.len() >= 2 {
        let n_couplings = rng.gen_range(0usize..inductors.len().min(3) + 1);
        let mut used: Vec<(usize, usize)> = Vec::new();
        for c in 0..n_couplings {
            let p = rng.gen_range(0..inductors.len());
            let q = rng.gen_range(0..inductors.len());
            let pair = (p.min(q), p.max(q));
            if p == q || used.contains(&pair) {
                continue;
            }
            used.push(pair);
            net.couple(
                format!("K{c}"),
                inductors[p].clone(),
                inductors[q].clone(),
                rng.gen_range(-1.0..1.0),
            );
        }
    }
    for _ in 0..rng.gen_range(1usize..3) {
        net.port(Port::to_ground(rng.gen_range(1..max_node + 1)));
    }
    net
}

/// Bit-level equality of two descriptor systems (E, A, B, C, D).
fn assert_systems_bit_identical(dense: &DescriptorSystem, sparse: &DescriptorSystem, ctx: &str) {
    assert_eq!(dense.order(), sparse.order(), "{ctx}: order");
    assert_eq!(dense.num_inputs(), sparse.num_inputs(), "{ctx}: inputs");
    let pairs = [
        ("E", dense.e(), sparse.e()),
        ("A", dense.a(), sparse.a()),
        ("B", dense.b(), sparse.b()),
        ("C", dense.c(), sparse.c()),
        ("D", dense.d(), sparse.d()),
    ];
    for (name, d, s) in pairs {
        assert_eq!(d.rows(), s.rows(), "{ctx}: {name} rows");
        assert_eq!(d.cols(), s.cols(), "{ctx}: {name} cols");
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                assert_eq!(
                    d[(i, j)].to_bits(),
                    s[(i, j)].to_bits(),
                    "{ctx}: {name}[{i},{j}] = {} dense vs {} sparse",
                    d[(i, j)],
                    s[(i, j)]
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random netlists: both stamps succeed with bit-identical systems, or
    /// both reject with the same diagnostic.
    #[test]
    fn sparse_stamp_is_bit_identical_to_dense(seed in 0u64..100_000) {
        let net = random_netlist(seed);
        prop_assert!(net.validate().is_ok(), "generated netlist invalid (seed {seed})");
        match (mna::stamp(&net), mna::stamp_sparse(&net)) {
            (Ok(dense), Ok(sparse)) => {
                let densified = sparse.to_dense().unwrap();
                assert_systems_bit_identical(&dense, &densified, &format!("seed {seed}"));
            }
            (Err(dense_err), Err(sparse_err)) => {
                let (dense_msg, sparse_msg) = (dense_err.to_string(), sparse_err.to_string());
                prop_assert!(
                    dense_msg == sparse_msg,
                    "seed {seed}: rejection diagnostics diverged: '{dense_msg}' vs '{sparse_msg}'"
                );
            }
            (dense, sparse) => {
                return Err(TestCaseError::fail(format!(
                    "seed {seed}: dense {:?} but sparse {:?}",
                    dense.map(|_| "ok"),
                    sparse.map(|_| "ok")
                )));
            }
        }
    }
}

/// The committed example decks — the corpus served by the daemon and swept by
/// `ds-sweep --decks` — stamp bit-identically on both paths.
#[test]
fn example_decks_stamp_bit_identically() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/decks");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cir"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 4, "deck corpus shrank: {}", paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let deck = parse_deck(&text).unwrap();
        let dense = mna::stamp(&deck.netlist)
            .unwrap_or_else(|e| panic!("{} does not stamp densely: {e}", path.display()));
        let sparse = mna::stamp_sparse(&deck.netlist)
            .unwrap()
            .to_dense()
            .unwrap();
        assert_systems_bit_identical(&dense, &sparse, &path.display().to_string());
    }
}
