//! Deck-workload conformance: every committed example deck must get
//! *identical* verdicts from the proposed SHH test, the Weierstrass baseline
//! and (at small orders, for expected-passive decks plus the pinned
//! K-coupled acceptance deck) the LMI baseline — all matching the deck's
//! declared/constructed ground truth.  Deck scenarios must also round-trip
//! through the persistent result store (resume skips them by fingerprint),
//! and the band-limited boundary family must be rejected through the
//! finite-frequency Hamiltonian-eigenvalue path with a usable witness.

use ds_passivity_suite::circuits::multiport;
use ds_passivity_suite::descriptor::transfer;
use ds_passivity_suite::harness::scenario::deck_scenarios_from_dir;
use ds_passivity_suite::harness::store::{task_fingerprint, ResultStore};
use ds_passivity_suite::harness::sweep::{run_sweep, SweepSpec};
use ds_passivity_suite::harness::{run_method, scenario_matrix, FamilyKind, Method, Scenario};
use ds_passivity_suite::linalg::decomp::symmetric;
use ds_passivity_suite::passivity::NonPassivityReason;
use std::path::{Path, PathBuf};

fn decks_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/decks")
}

#[test]
fn methods_agree_on_every_committed_deck() {
    let scenarios = deck_scenarios_from_dir(&decks_dir()).unwrap();
    assert!(scenarios.len() >= 4, "committed deck corpus shrank");
    for scenario in &scenarios {
        let spec = scenario.deck.as_ref().unwrap();
        let model = scenario.build().unwrap();
        let fast = run_method(Method::Proposed, &model).unwrap();
        let weier = run_method(Method::Weierstrass, &model).unwrap();
        assert_eq!(
            fast.verdict.is_passive(),
            spec.expected_passive,
            "{}: proposed disagrees with ground truth ({})",
            spec.name,
            fast.verdict
        );
        assert_eq!(
            fast.verdict.is_passive(),
            weier.verdict.is_passive(),
            "{}: proposed and weierstrass disagree",
            spec.name
        );
        if spec.expected_passive && scenario.order() <= ds_passivity_suite::harness::LMI_MAX_ORDER {
            let lmi = run_method(Method::Lmi, &model).unwrap();
            assert!(
                lmi.verdict.is_passive(),
                "{}: lmi disagrees with SHH verdict",
                spec.name
            );
        }
    }
}

#[test]
fn coupled_pair_deck_stamps_symmetric_psd_l_block_and_passes_all_methods() {
    // The acceptance deck: two K-coupled inductors.
    let scenarios = deck_scenarios_from_dir(&decks_dir()).unwrap();
    let scenario = scenarios
        .iter()
        .find(|s| s.deck.as_ref().unwrap().name == "coupled_pair")
        .expect("coupled_pair.cir is committed");
    let spec = scenario.deck.as_ref().unwrap();
    assert_eq!(spec.netlist.couplings.len(), 1);
    let model = scenario.build().unwrap();

    // The trailing L block of E is symmetric PSD with a genuine mutual term.
    let n_nodes = spec.netlist.num_nodes;
    let n = model.system.order();
    let l = model.system.e().block(n_nodes, n, n_nodes, n);
    assert!(l.is_symmetric(0.0));
    assert!(l[(0, 1)] != 0.0, "no mutual inductance stamped");
    let expected_m = 0.7 * (1.2f64 * 0.8).sqrt();
    assert!((l[(0, 1)] - expected_m).abs() < 1e-15);
    assert!(symmetric::min_eigenvalue(&l).unwrap() > 0.0);

    // Identical verdicts under the SHH and LMI methods (and Weierstrass).
    for method in Method::ALL {
        let report = run_method(method, &model).unwrap();
        assert!(
            report.verdict.is_passive(),
            "{method} rejected the coupled-pair deck: {}",
            report.verdict
        );
    }
}

#[test]
fn deck_scenarios_roundtrip_through_the_persistent_store() {
    let scenarios = deck_scenarios_from_dir(&decks_dir()).unwrap();
    let tasks = scenario_matrix(&scenarios, &[Method::Proposed, Method::Weierstrass]);
    let dir = std::env::temp_dir().join(format!("ds-deck-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut store = ResultStore::open(&dir).unwrap();
        let indexed: Vec<(usize, ds_passivity_suite::harness::SweepTask)> =
            tasks.iter().cloned().enumerate().collect();
        let (pending, skipped) = store.partition_pending(indexed);
        assert_eq!(skipped, 0);
        let ids: Vec<usize> = pending.iter().map(|(id, _)| *id).collect();
        let list = pending.into_iter().map(|(_, t)| t).collect();
        let result = run_sweep(&SweepSpec::new(list, 2).with_task_ids(ids));
        assert!(result.records.iter().all(|r| r.agrees == Some(true)));
        store.append_segment("deck-run", &result.records).unwrap();
    }
    // A fresh open resumes: every deck task is skipped by fingerprint.
    let store = ResultStore::open(&dir).unwrap();
    let indexed: Vec<(usize, ds_passivity_suite::harness::SweepTask)> =
        tasks.iter().cloned().enumerate().collect();
    let (pending, skipped) = store.partition_pending(indexed);
    assert!(
        pending.is_empty(),
        "resume re-ran {} deck tasks",
        pending.len()
    );
    assert_eq!(skipped, tasks.len());
    // The fingerprint embeds the canonical-deck hash (scenario seed).
    for task in &tasks {
        let fp = task_fingerprint(task);
        assert!(fp.starts_with("deck|"), "unexpected fingerprint {fp}");
        assert!(fp.contains(&format!("|s{}|", task.scenario.seed)));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn banded_violation_is_found_through_the_finite_frequency_witness() {
    // The band-limited model's violation is invisible at ω = 0 and ω = ∞:
    // only the interior Hamiltonian-eigenvalue classification can find it.
    let omega0 = 2.0;
    let model = multiport::banded_boundary_model(2, 0.4, omega0, 3).unwrap();
    let report = run_method(Method::Proposed, &model).unwrap();
    let reason = match &report.verdict {
        ds_passivity_suite::passivity::PassivityVerdict::NotPassive { reason } => reason,
        other => panic!("banded model accepted: {other}"),
    };
    let NonPassivityReason::ProperPartNotPositiveReal {
        witness_frequency: Some(w),
        min_eigenvalue,
    } = reason
    else {
        panic!("expected a finite-frequency witness, got: {reason}");
    };
    assert!(*min_eigenvalue < 0.0);
    assert!(
        w.is_finite() && *w > 0.0,
        "witness frequency should be finite and positive, got {w}"
    );
    // The witness really violates: the Popov function is negative there, and
    // the frequency sits in the band around ω₀ (well inside one decade).
    let g = transfer::evaluate_jomega(&model.system, *w).unwrap();
    assert!(g.popov_min_eigenvalue().unwrap() < 0.0);
    assert!(
        (*w / omega0).abs().log10().abs() < 1.0,
        "witness ω = {w} is far from ω₀ = {omega0}"
    );

    // A scenario-level sanity check: the family is wired into the harness.
    let scenario = Scenario::new(FamilyKind::BoundaryBand, 0)
        .with_ports(2)
        .with_margin(0.4)
        .with_seed(3);
    assert_eq!(scenario.order(), model.system.order());
    let built = scenario.build().unwrap();
    assert!(!built.expected_passive);
}
