//! Reduce-then-verify agreement: on orders small enough to check both ways,
//! the Krylov-reduced verdict must match the exact dense verdict for every
//! tractable method.  This is the overlap regime (orders ≤ 200) where the
//! golden suite also pins reduced cells; beyond it only the reduced path is
//! tractable and this agreement is the evidence it can be trusted there.

use ds_passivity_suite::circuits::generators::reduced_ladder_netlist;
use ds_passivity_suite::harness::Method;
use ds_passivity_suite::pipeline::PassivityCheck;
use ds_passivity_suite::shh::krylov::ReduceSpec;

/// Sections covering the passthrough regime (order ≤ 48 → no truncation),
/// the first truncating order, and comfortably-compressed orders, each in
/// plain and coupled variants.  Orders are 2·sections + 1.
const SECTIONS: [usize; 4] = [10, 24, 50, 99];

#[test]
fn reduced_verdicts_agree_with_dense_on_overlap_orders() {
    for &sections in &SECTIONS {
        for coupled in [false, true] {
            let netlist = reduced_ladder_netlist(sections, coupled).unwrap();
            for method in [Method::Proposed, Method::Weierstrass] {
                let name = format!("ladder-{sections}-{coupled}-{method:?}");
                let dense = PassivityCheck::netlist(name.clone(), netlist.clone())
                    .method(method)
                    .run()
                    .unwrap();
                let reduced = PassivityCheck::netlist(name.clone(), netlist.clone())
                    .method(method)
                    .reduce(ReduceSpec::default())
                    .run()
                    .unwrap();
                assert_eq!(
                    dense.passive, reduced.passive,
                    "{name}: dense and reduced verdicts diverged"
                );
                assert_eq!(
                    dense.order, reduced.order,
                    "{name}: reduced outcome must report the original order"
                );
                let reduced_order = reduced.reduced_order.unwrap();
                if dense.order <= 48 {
                    // Passthrough: nothing truncated, residual exactly zero.
                    assert_eq!(reduced_order, dense.order, "{name}: passthrough order");
                    assert_eq!(reduced.residual, Some(0.0), "{name}: passthrough residual");
                } else {
                    assert_eq!(reduced_order, 48, "{name}: truncated to target order");
                }
                assert!(
                    reduced.reduction_ns.is_some(),
                    "{name}: reduction timing must be recorded"
                );
            }
        }
    }
}

#[test]
fn reduced_ladders_are_passive_at_every_overlap_order() {
    // The family is passive by construction; the reduced path must say so at
    // every overlap order (congruence projection preserves passivity).
    for &sections in &SECTIONS {
        let netlist = reduced_ladder_netlist(sections, true).unwrap();
        let outcome = PassivityCheck::netlist(format!("ladder-{sections}"), netlist)
            .reduce(ReduceSpec::default())
            .run()
            .unwrap();
        assert_eq!(
            outcome.passive,
            Some(true),
            "sections={sections} must verify passive"
        );
        assert_eq!(
            outcome.agrees,
            Some(true),
            "sections={sections} expectation"
        );
    }
}
