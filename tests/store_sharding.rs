//! Cross-process-shape conformance for the persistent result store: a sweep
//! split across two `--shard i/2` slices into one store must merge to sorted
//! JSONL byte-identical to the single-process run of the same matrix, and a
//! resume over a fully-populated store must schedule zero tasks.

use ds_passivity_suite::harness::prelude::*;
use ds_passivity_suite::harness::store::task_fingerprint;
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("store-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn matrix() -> Vec<SweepTask> {
    scenario_matrix(&quick_scenarios(), &[Method::Proposed, Method::Weierstrass])
}

/// Runs one shard of the matrix on its own thread count and appends its
/// records to the store, the way an independent `ds-sweep --shard` process
/// would.
fn run_shard(store: &mut ResultStore, tasks: &[SweepTask], index: usize, modulus: usize) {
    let shard = shard_tasks(tasks, index, modulus);
    let ids: Vec<usize> = shard.iter().map(|(id, _)| *id).collect();
    let list: Vec<SweepTask> = shard.into_iter().map(|(_, task)| task).collect();
    let result = run_sweep(&SweepSpec::new(list, 1 + index).with_task_ids(ids));
    store
        .append_segment(&format!("shard-{index}-of-{modulus}"), &result.records)
        .unwrap();
}

#[test]
fn two_shard_store_merges_byte_identical_to_single_run() {
    let tasks = matrix();
    let single = run_sweep(&SweepSpec::new(tasks.clone(), 2));
    let reference = render_jsonl(&single.records);

    let dir = temp_store("two-shard");
    let mut store = ResultStore::open(&dir).unwrap();
    run_shard(&mut store, &tasks, 1, 2); // shard order must not matter
    run_shard(&mut store, &tasks, 0, 2);
    let (merged_jsonl, merged_csv, merged_count) = store.write_merged().unwrap();
    assert_eq!(merged_count, tasks.len());
    assert_eq!(
        std::fs::read_to_string(&merged_jsonl).unwrap(),
        reference,
        "sharded merge diverged from the single-process artifact"
    );
    // The merged CSV also validates with the same record count.
    let csv = std::fs::read_to_string(&merged_csv).unwrap();
    assert_eq!(validate_csv_rows(&csv), tasks.len());
}

fn validate_csv_rows(text: &str) -> usize {
    ds_passivity_suite::harness::validate_csv(text).unwrap()
}

#[test]
fn resume_over_a_full_store_schedules_zero_tasks() {
    let tasks = matrix();
    let dir = temp_store("resume-zero");
    let mut store = ResultStore::open(&dir).unwrap();
    run_shard(&mut store, &tasks, 0, 1);

    // A fresh process opening the same store sees every fingerprint.
    let reopened = ResultStore::open(&dir).unwrap();
    assert_eq!(reopened.len(), tasks.len());
    for task in &tasks {
        assert!(reopened.contains(&task_fingerprint(task)));
    }
    let indexed: Vec<(usize, SweepTask)> = tasks.iter().cloned().enumerate().collect();
    let (pending, skipped) = reopened.partition_pending(indexed);
    assert_eq!(
        pending.len(),
        0,
        "resume re-scheduled {} tasks",
        pending.len()
    );
    assert_eq!(skipped, tasks.len());
}

#[test]
fn partial_store_resumes_only_the_missing_slice() {
    let tasks = matrix();
    let dir = temp_store("resume-partial");
    let mut store = ResultStore::open(&dir).unwrap();
    run_shard(&mut store, &tasks, 0, 2);

    let indexed: Vec<(usize, SweepTask)> = tasks.iter().cloned().enumerate().collect();
    let (pending, skipped) = store.partition_pending(indexed);
    assert_eq!(skipped, tasks.len().div_ceil(2));
    // Exactly the odd-indexed tasks remain, in order.
    let expected: Vec<usize> = (0..tasks.len()).filter(|id| id % 2 == 1).collect();
    let got: Vec<usize> = pending.iter().map(|(id, _)| *id).collect();
    assert_eq!(got, expected);

    // Completing the pending slice and merging reproduces the full artifact.
    let ids: Vec<usize> = pending.iter().map(|(id, _)| *id).collect();
    let list: Vec<SweepTask> = pending.into_iter().map(|(_, task)| task).collect();
    let result = run_sweep(&SweepSpec::new(list, 2).with_task_ids(ids));
    store
        .append_segment("resume-slice", &result.records)
        .unwrap();
    let single = run_sweep(&SweepSpec::new(tasks, 1));
    let (merged_jsonl, _, _) = store.write_merged().unwrap();
    assert_eq!(
        std::fs::read_to_string(&merged_jsonl).unwrap(),
        render_jsonl(&single.records)
    );
}
