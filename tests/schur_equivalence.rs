//! Q-free Schur path conformance: `real_schur_t_only` (and the pooled
//! `eigen::eigenvalues` built on it) must produce exactly the eigenvalues of
//! the full `real_schur` decomposition.  The Q updates never feed back into
//! the `T` iterates, so the agreement is required to be *bit-for-bit*, not
//! merely within tolerance — any drift between the two paths is a bug.

use ds_linalg::decomp::schur::{real_schur, real_schur_t_only};
use ds_linalg::eigen;
use ds_linalg::workspace::WorkspacePool;
use ds_linalg::{Complex, Matrix};
use proptest::prelude::*;

/// Sorts eigenvalues by (re, im) bit patterns for a stable pairing.
fn sorted(mut eigs: Vec<Complex>) -> Vec<Complex> {
    eigs.sort_by(|a, b| {
        a.re.partial_cmp(&b.re)
            .unwrap()
            .then(a.im.partial_cmp(&b.im).unwrap())
    });
    eigs
}

fn assert_paths_agree(a: &Matrix) {
    let full = real_schur(a).unwrap();
    let t_only = real_schur_t_only(a).unwrap();
    assert_eq!(
        t_only.as_slice(),
        full.t.as_slice(),
        "T factors differ between the Q-free and full Schur paths"
    );
    let from_full = sorted(eigen::eigenvalues_from_schur(&full.t));
    let from_t = sorted(eigen::eigenvalues(a).unwrap());
    assert_eq!(from_full.len(), from_t.len());
    for (x, y) in from_full.iter().zip(from_t.iter()) {
        assert_eq!(
            x.re.to_bits(),
            y.re.to_bits(),
            "re drift: {} vs {}",
            x.re,
            y.re
        );
        assert_eq!(
            x.im.to_bits(),
            y.im.to_bits(),
            "im drift: {} vs {}",
            x.im,
            y.im
        );
    }
    // The explicit-workspace kernel must agree as well (and keep agreeing when
    // the workspace is reused across calls).
    let mut pool = WorkspacePool::new();
    for _ in 0..2 {
        let pooled = sorted(eigen::eigenvalues_in(a, pool.get(a.rows())).unwrap());
        for (x, y) in from_full.iter().zip(pooled.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}

#[test]
fn random_like_matrix() {
    for n in [5usize, 13, 24, 40] {
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17 + 3) % 23) as f64 / 23.0 - 0.5;
            v + if i == j { 0.3 } else { 0.0 }
        });
        assert_paths_agree(&a);
    }
}

#[test]
fn defective_jordan_blocks() {
    // Jordan blocks are the classic hard case for the QR iteration: repeated
    // eigenvalues with a single chain.
    for n in [3usize, 6, 9] {
        let mut a = Matrix::identity(n).scale(2.0);
        for i in 0..n - 1 {
            a[(i, i + 1)] = 1.0;
        }
        assert_paths_agree(&a);
        // A perturbed, similarity-hidden variant.
        let t = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else {
                0.05 * ((i + 2 * j) % 3) as f64
            }
        });
        let t_inv = ds_linalg::decomp::lu::inverse(&t).unwrap();
        let hidden = &(&t * &a) * &t_inv;
        assert_paths_agree(&hidden);
    }
}

#[test]
fn rotation_like_complex_pairs() {
    // Block-diagonal rotations: all eigenvalues are complex pairs.
    let blocks: Vec<Matrix> = (1..6)
        .map(|k| {
            let w = k as f64 * 0.7;
            Matrix::from_rows(&[&[0.1 * k as f64, w], &[-w, 0.1 * k as f64]])
        })
        .collect();
    let refs: Vec<&Matrix> = blocks.iter().collect();
    let a = Matrix::block_diag(&refs);
    assert_paths_agree(&a);
}

#[test]
fn hamiltonian_shaped_matrix() {
    // The shape the passivity hot path feeds to `eigen::eigenvalues`.
    let n = 10;
    let a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            -1.0 - 0.2 * i as f64
        } else {
            0.1 * (((i * 3 + j * 5) % 5) as f64 - 2.0)
        }
    });
    let g = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 6) as f64 * 0.1);
    let g = &(&g * &g.transpose()) + &Matrix::identity(n).scale(0.4);
    let q = Matrix::from_fn(n, n, |i, j| ((i + 2 * j) % 4) as f64 * 0.1);
    let q = &(&q.transpose() * &q) + &Matrix::identity(n).scale(0.2);
    let upper = Matrix::hstack(&[&a, &g.scale(-1.0)]);
    let lower = Matrix::hstack(&[&q, &a.transpose().scale(-1.0)]);
    let h = Matrix::vstack(&[&upper, &lower]);
    assert_paths_agree(&h);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(29))]

    #[test]
    fn equivalence_over_random_orders(order in 2usize..30, seed in 0u64..1000) {
        let a = Matrix::from_fn(order, order, |i, j| {
            let base = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(j as u64)
                .wrapping_mul(1442695040888963407)
                .wrapping_add(seed);
            let unit = (base >> 11) as f64 / (1u64 << 53) as f64;
            unit - 0.5 + if i == j { 0.4 } else { 0.0 }
        });
        // Convergence is not guaranteed for adversarial random matrices at the
        // iteration cap, but both paths must agree on success *and* failure.
        match (real_schur(&a), real_schur_t_only(&a)) {
            (Ok(full), Ok(t_only)) => {
                prop_assert_eq!(t_only.as_slice(), full.t.as_slice());
            }
            (Err(_), Err(_)) => {}
            (full, t_only) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "paths diverged: full = {:?}, t_only = {:?}",
                    full.map(|_| ()), t_only.map(|_| ())
                )));
            }
        }
    }
}
