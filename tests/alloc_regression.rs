//! Allocation-count regression tests for the workspace-reuse kernel layer.
//!
//! A counting global allocator wraps the system allocator; the `_in` eigen
//! kernels (Hessenberg / Francis QR, LU, sign iteration, matmul-into) are run
//! once to warm a [`WorkspacePool`] and then again in steady state, where the
//! second pass must perform **zero** heap allocations.  A second test pins the
//! harness-level effect: the second identical passivity task on a thread must
//! allocate strictly less than the first (the per-thread pools are warm).

use ds_circuits::generators;
use ds_linalg::decomp::{hessenberg, lu, schur};
use ds_linalg::sign::{self, SignOptions};
use ds_linalg::workspace::{ReflectorScratch, WorkspacePool};
use ds_linalg::{eigen, Complex, Matrix};
use ds_passivity::fast::{check_passivity, FastTestOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The counter is process-global, so the two tests must not overlap: libtest
/// runs them on separate threads by default, and a concurrent test's
/// allocations would land inside the other's measured window.
static SERIALIZE: Mutex<()> = Mutex::new(());

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A stable, well-conditioned test matrix (sign iteration converges, Schur
/// iteration converges, LU is nonsingular).
fn stable_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = ((i * 31 + j * 17 + 3) % 23) as f64 / 23.0 - 0.5;
        0.2 * v + if i == j { -2.0 - 0.05 * i as f64 } else { 0.0 }
    })
}

#[test]
fn eigen_kernels_are_allocation_free_in_steady_state() {
    let _guard = SERIALIZE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let n = 48;
    let a = stable_matrix(n);
    let mut pool = WorkspacePool::new();
    let mut evals: Vec<Complex> = Vec::with_capacity(n);
    let mut h = Matrix::zeros(n, n);
    let mut q = Matrix::zeros(n, n);
    let mut refl = ReflectorScratch::new();
    let mut factor = lu::Lu::empty();
    let mut inverse = Matrix::zeros(n, n);
    let mut solution = Matrix::zeros(n, n);
    let mut sign_out = Matrix::zeros(n, n);
    let mut product = Matrix::zeros(n, n);

    let mut run_all = |pool: &mut WorkspacePool| {
        eigen::eigenvalues_into(&a, pool.get(n), &mut evals).unwrap();
        h.copy_from(&a);
        hessenberg::reduce_in(&mut h, Some(&mut q), &mut refl).unwrap();
        h.copy_from(&a);
        // The compact-WY panel path must also reach zero steady-state
        // allocations once its panel buffers are warm.
        hessenberg::reduce_blocked_in(&mut h, Some(&mut q), &mut refl).unwrap();
        h.copy_from(&a);
        schur::real_schur_in(&mut h, None, &mut refl).unwrap();
        lu::factor_into(&a, &mut factor).unwrap();
        factor.inverse_into(&mut inverse).unwrap();
        factor.solve_into(&inverse, &mut solution).unwrap();
        sign::matrix_sign_into(&a, &SignOptions::default(), pool.get(n), &mut sign_out).unwrap();
        a.matmul_into(&inverse, &mut product).unwrap();
        a.transpose_matmul_into(&inverse, &mut product).unwrap();
    };

    // Warm-up: populates the pool and sizes every explicit buffer.
    run_all(&mut pool);
    let before = allocations();
    run_all(&mut pool);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state eigen kernels performed {} heap allocations",
        after - before
    );
    // Sanity: the warm pass still computed real results.
    assert_eq!(evals.len(), n);
    assert!(sign_out
        .as_slice()
        .iter()
        .all(|&x| x.is_finite() && x < 0.5));
}

#[test]
fn sparse_spmv_kernels_are_allocation_free() {
    // The sparse mat-vec kernels feed the Krylov reduction's inner loop at
    // order 10⁴, where even one allocation per call would dominate; unlike
    // the eigen kernels they need no warm-up, so the very first call must
    // already be clean.
    let _guard = SERIALIZE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let n = 500;
    let mut coo = ds_linalg::sparse::Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0 + i as f64 * 1e-3);
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
            coo.push(i + 1, i, -1.0);
        }
    }
    let csr = coo.to_csr();
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; n];
    let mut z = vec![0.0; n];

    let before = allocations();
    for _ in 0..8 {
        csr.spmv_into(&x, &mut y);
        csr.spmv_transpose_into(&y, &mut z);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "sparse spmv kernels performed {} heap allocations",
        after - before
    );
    assert!(z.iter().all(|v| v.is_finite()));
}

#[test]
fn second_harness_task_of_same_order_allocates_less() {
    // One full passivity task on a fresh thread state, then the identical task
    // again: the second run hits the warm per-thread workspace pools (and the
    // warm buffers inside them), so its allocation count must drop.  The exact
    // counts vary with the flow's data-dependent branches, so only the
    // direction is pinned, not a constant.
    let _guard = SERIALIZE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let model = generators::rlc_ladder_with_impulsive(20).unwrap();
    let options = FastTestOptions::default();

    let start = allocations();
    let first_report = check_passivity(&model.system, &options).unwrap();
    let first = allocations() - start;

    let start = allocations();
    let second_report = check_passivity(&model.system, &options).unwrap();
    let second = allocations() - start;

    assert_eq!(first_report.verdict, second_report.verdict);
    assert!(
        second < first,
        "steady-state task allocated no less than the cold task ({second} vs {first})"
    );
}
