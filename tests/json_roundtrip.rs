//! Property tests for the hand-rolled JSON layer: `quote` → `parse` must be
//! the identity over strings drawn from a pool deliberately heavy in astral
//! characters, control characters, quotes and backslashes — the characters
//! that once corrupted merged artifacts — and the `\u` escape syntax must
//! decode UTF-16 surrogate pairs to single scalars.

use ds_passivity_suite::harness::json;
use proptest::prelude::*;

/// Characters the generator draws from: every class the serializer treats
/// specially, plus astral-plane scalars (emoji, musical symbols) that exercise
/// the surrogate-pair path when escaped externally.
const POOL: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    ',',
    ':',
    '{',
    '}',
    '[',
    ']',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{0}',
    '\u{1}',
    '\u{8}',
    '\u{c}',
    '\u{1f}',
    '\u{7f}',
    'ω',
    '∞',
    'é',
    '\u{d7ff}',
    '\u{e000}',
    '\u{fffd}',
    '😀',
    '𝄞',
    '🚀',
    '\u{10FFFF}',
];

/// Deterministic splitmix64 step, so each (seed, len) pair names one string.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pooled_string(seed: u64, len: usize) -> String {
    let mut state = seed;
    (0..len)
        .map(|_| POOL[(splitmix(&mut state) as usize) % POOL.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quote_parse_roundtrip_is_identity(seed in 0u64..u64::MAX, len in 0usize..40) {
        let original = pooled_string(seed, len);
        let quoted = json::quote(&original);
        let parsed = json::parse(&quoted)
            .unwrap_or_else(|e| panic!("quote produced unparsable JSON for {original:?}: {e}"));
        prop_assert_eq!(parsed.as_str(), Some(original.as_str()));
    }

    #[test]
    fn roundtrip_survives_embedding_in_an_object(seed in 0u64..u64::MAX, len in 1usize..24) {
        let original = pooled_string(seed, len);
        let doc = format!("{{\"reason\":{},\"n\":1.5e-3}}", json::quote(&original));
        let value = json::parse(&doc).unwrap();
        prop_assert_eq!(value.get("reason").unwrap().as_str(), Some(original.as_str()));
        prop_assert_eq!(value.get("n").unwrap().as_f64(), Some(1.5e-3));
    }

    #[test]
    fn double_roundtrip_is_stable(seed in 0u64..u64::MAX, len in 0usize..32) {
        // quote(parse(quote(s))) == quote(s): the byte-stability the merged
        // store artifact relies on when records are re-rendered after a load.
        let original = pooled_string(seed, len);
        let quoted = json::quote(&original);
        let reparsed = json::parse(&quoted).unwrap();
        prop_assert_eq!(json::quote(reparsed.as_str().unwrap()), quoted);
    }
}

#[test]
fn escaped_surrogate_pairs_equal_raw_astral_chars() {
    // The serializer emits astral chars raw; external producers may escape
    // them.  Both spellings must parse to the same record string.
    let raw = json::parse("\"😀𝄞\"").unwrap();
    let escaped = json::parse("\"\\uD83D\\uDE00\\uD834\\uDD1E\"").unwrap();
    assert_eq!(raw, escaped);
}
