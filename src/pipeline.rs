//! The unified check pipeline: one request/outcome API for every consumer.
//!
//! Historically each binary re-assembled the pipeline by hand — `ds-netlist`
//! parse → `ds-circuits` stamp → method dispatch → ad-hoc verdict formatting
//! — with per-crate error types glued together stringly.  This module is the
//! one true assembly: a [`PassivityCheck`] builder produces a
//! [`CheckRequest`], and [`CheckRequest::run`] produces a [`CheckOutcome`]
//! whose deterministic fields are *identical* to the record the sweep engine
//! would emit for the same input (deck sources literally execute through
//! [`ds_harness::run_single`]).  The `ds-serve` daemon, `ds-sweep`, the bench
//! binaries and the examples all route through here.
//!
//! ```
//! use ds_passivity_suite::prelude::*;
//!
//! # fn main() -> Result<(), ds_passivity_suite::SuiteError> {
//! let outcome = PassivityCheck::deck_text("R1 in 0 50\n.port in\n.end\n")
//!     .method(Method::Proposed)
//!     .run()?;
//! assert_eq!(outcome.passive, Some(true));
//! # Ok(())
//! # }
//! ```

use crate::error::SuiteError;
use ds_circuits::generators::CircuitModel;
use ds_circuits::{mna, Netlist};
use ds_descriptor::DescriptorSystem;
use ds_harness::json;
use ds_harness::scenario::Scenario;
use ds_harness::sweep::{stage_ns_array, verdict_fields, TaskStatus};
use ds_harness::{run_method, run_single, Method, SweepRecord, SweepTask, LMI_MAX_ORDER};
use ds_netlist::Deck;
use ds_passivity::enforce::{enforce_passivity, EnforcementOptions, EnforcementOutcome};
use ds_passivity::{PassivityReport, PassivityVerdict};
use ds_shh::krylov::{self, ReduceSpec};
use std::time::{Duration, Instant};

/// Version tag of the serialized verdict report ([`CheckOutcome::report_json`]).
/// `v2` added the `reduced_order`/`residual` fields of the Krylov
/// reduce-then-verify path (`null` for direct checks).
pub const REPORT_SCHEMA: &str = "ds-check-report/v2";

/// What a [`CheckRequest`] checks: a deck in some stage of parsing, or an
/// in-memory model.
#[derive(Debug, Clone)]
pub enum CheckSource {
    /// Raw SPICE deck text (parsed by the pipeline, so parse diagnostics flow
    /// through [`SuiteError::Parse`]).
    DeckText {
        /// Display name; defaults to the canonical content hash in hex.
        name: Option<String>,
        /// The deck text.
        text: String,
    },
    /// An already-parsed deck.
    Deck {
        /// Display name.
        name: String,
        /// The parsed deck.
        deck: Deck,
    },
    /// An in-memory netlist (ground truth taken as passivity-by-construction).
    Netlist {
        /// Display name.
        name: String,
        /// The netlist to stamp.
        netlist: Netlist,
    },
    /// A generated circuit model with its ground truth.
    Model(Box<CircuitModel>),
    /// A bare descriptor system (no ground truth, so `agrees` stays `None`).
    System {
        /// Display name.
        name: String,
        /// The system to test.
        system: Box<DescriptorSystem>,
    },
}

/// A fully-specified check: source, method, repair flag, optional reduction.
#[derive(Debug, Clone)]
pub struct CheckRequest {
    /// What to check.
    pub source: CheckSource,
    /// Which passivity test to run.
    pub method: Method,
    /// Whether to attempt passivity *enforcement* (`ds-core::enforce`) when
    /// the verdict is non-passive, reporting the perturbation in
    /// [`CheckOutcome::repair`].
    pub repair: bool,
    /// When set, netlist-backed sources (deck text, decks, netlists) are
    /// stamped *sparsely* and projected down by the PRIMA-style block-Krylov
    /// congruence of `ds-shh::krylov` before verification — the order-10⁴
    /// path.  Unsupported for [`CheckSource::Model`] / [`CheckSource::System`]
    /// sources, which carry no netlist to stamp.
    pub reduce: Option<ReduceSpec>,
}

/// Outcome of a passivity-enforcement attempt riding on a check
/// (`repair = true`).
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// Whether a perturbation was applied (false when the model was already
    /// passive or the violation is not enforceable).
    pub enforced: bool,
    /// The series resistance added at every port (0 when none).
    pub resistance: f64,
    /// Whether the (possibly perturbed) model is passive.
    pub passive_after: bool,
    /// Stable reason slug when the violation is not enforceable, else empty.
    pub reason: String,
}

/// The result of one check: the verdict plus everything a consumer needs to
/// report, cache, or cross-check it.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Display name of the source (not part of the serialized report: the
    /// same canonical deck checked under different file names must produce
    /// byte-identical reports).
    pub name: String,
    /// Source family (`"deck"` for deck sources — matching the sweep engine's
    /// family — `"netlist"` / `"model"` / `"system"` for in-memory ones).
    pub family: &'static str,
    /// Cache key: the 53-bit truncated canonical content hash for decks
    /// (exactly the `seed` the sweep engine fingerprints deck tasks under),
    /// 0 for in-memory sources.
    pub key: u64,
    /// Full 64-bit canonical content hash, for deck sources.
    pub canonical_hash: Option<u64>,
    /// The method that produced the verdict.
    pub method: Method,
    /// How the check ended (method errors are recorded, not thrown, matching
    /// the sweep engine).
    pub status: TaskStatus,
    /// MNA/state order of the checked system.
    pub order: usize,
    /// Port count.
    pub ports: usize,
    /// The verdict (`None` when the method errored).
    pub passive: Option<bool>,
    /// Whether a passive verdict was strict.
    pub strict: bool,
    /// Stable reason slug for non-passive verdicts, or the error text.
    pub reason: String,
    /// Ground truth, when the source carries one.
    pub expected_passive: Option<bool>,
    /// Whether the verdict matched the ground truth.
    pub agrees: Option<bool>,
    /// Achieved reduced order, when the check ran through the Krylov
    /// reduce-then-verify path ([`CheckOutcome::order`] keeps the *original*
    /// order on that path, so the compression is visible).
    pub reduced_order: Option<usize>,
    /// Krylov truncation residual of the reduction (`0` when exact).
    pub residual: Option<f64>,
    /// Wall-clock nanoseconds of sparse stamp + projection (volatile —
    /// excluded from [`CheckOutcome::report_json`]).
    pub reduction_ns: Option<u64>,
    /// Wall-clock time of the method run.
    pub elapsed: Duration,
    /// Enforcement outcome when the request asked for repair.
    pub repair: Option<RepairOutcome>,
    /// The full report of the underlying test, when the outcome was computed
    /// through the in-memory path (absent for deck sources — which execute
    /// through the sweep engine — and for outcomes reloaded from a store).
    pub report: Option<PassivityReport>,
    /// The exact sweep-engine record this outcome corresponds to (present
    /// for deck sources; the `ds-serve` daemon persists it in its result
    /// store so restarted servers remember every verdict).
    pub record: Option<SweepRecord>,
}

impl CheckOutcome {
    /// Reconstructs an outcome from a persisted sweep record — the store tier
    /// of the `ds-serve` cache.  [`CheckOutcome::report_json`] of the
    /// reconstruction is byte-identical to the freshly-computed report.
    pub fn from_record(record: &SweepRecord) -> CheckOutcome {
        CheckOutcome {
            name: record.scenario.clone(),
            family: record.family,
            key: record.seed,
            canonical_hash: None,
            method: Method::parse(record.method).unwrap_or(Method::Proposed),
            status: record.status,
            order: record.order,
            ports: record.ports,
            passive: record.passive,
            strict: record.strict,
            reason: record.reason.clone(),
            expected_passive: record.expected_passive,
            agrees: record.agrees,
            reduced_order: record.reduced_order,
            residual: record.residual,
            reduction_ns: record.reduction_ns,
            elapsed: record.elapsed,
            repair: None,
            report: None,
            record: Some(record.clone()),
        }
    }

    /// Serializes the deterministic verdict fields as one JSON object — the
    /// response body of the `ds-serve` daemon.  Volatile fields (name,
    /// elapsed time) are excluded so identical checks render byte-identical
    /// reports, whether computed fresh, replayed from cache, or rebuilt from
    /// a persisted record.
    pub fn report_json(&self) -> String {
        let repair = match &self.repair {
            None => "null".to_string(),
            Some(r) => format!(
                "{{\"enforced\":{},\"resistance\":{},\"passive_after\":{},\"reason\":{}}}",
                r.enforced,
                json::number(r.resistance),
                r.passive_after,
                json::quote(&r.reason)
            ),
        };
        format!(
            "{{\"schema\":{},\"family\":{},\"key\":{},\"method\":{},\"status\":{},\"order\":{},\"ports\":{},\"passive\":{},\"strict\":{},\"reason\":{},\"expected_passive\":{},\"agrees\":{},\"reduced_order\":{},\"residual\":{},\"repair\":{}}}",
            json::quote(REPORT_SCHEMA),
            json::quote(self.family),
            self.key,
            json::quote(self.method.name()),
            json::quote(self.status.name()),
            self.order,
            self.ports,
            json::opt_bool(self.passive),
            self.strict,
            json::quote(&self.reason),
            json::opt_bool(self.expected_passive),
            json::opt_bool(self.agrees),
            json::opt_usize(self.reduced_order),
            json::opt_number(self.residual),
            repair
        )
    }
}

/// Builder for a [`CheckRequest`].
#[derive(Debug, Clone)]
pub struct PassivityCheck {
    request: CheckRequest,
}

impl PassivityCheck {
    fn from_source(source: CheckSource) -> Self {
        PassivityCheck {
            request: CheckRequest {
                source,
                method: Method::Proposed,
                repair: false,
                reduce: None,
            },
        }
    }

    /// Checks raw SPICE deck text.
    pub fn deck_text(text: impl Into<String>) -> Self {
        Self::from_source(CheckSource::DeckText {
            name: None,
            text: text.into(),
        })
    }

    /// Checks an already-parsed deck.
    pub fn deck(name: impl Into<String>, deck: Deck) -> Self {
        Self::from_source(CheckSource::Deck {
            name: name.into(),
            deck,
        })
    }

    /// Checks an in-memory netlist.
    pub fn netlist(name: impl Into<String>, netlist: Netlist) -> Self {
        Self::from_source(CheckSource::Netlist {
            name: name.into(),
            netlist,
        })
    }

    /// Checks a generated circuit model (keeps its ground truth).
    pub fn model(model: CircuitModel) -> Self {
        Self::from_source(CheckSource::Model(Box::new(model)))
    }

    /// Checks a bare descriptor system.
    pub fn system(name: impl Into<String>, system: DescriptorSystem) -> Self {
        Self::from_source(CheckSource::System {
            name: name.into(),
            system: Box::new(system),
        })
    }

    /// Overrides the display name (deck-text sources default to the canonical
    /// content hash).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        match &mut self.request.source {
            CheckSource::DeckText { name: slot, .. } => *slot = Some(name),
            CheckSource::Deck { name: slot, .. }
            | CheckSource::Netlist { name: slot, .. }
            | CheckSource::System { name: slot, .. } => *slot = name,
            CheckSource::Model(model) => model.name = name,
        }
        self
    }

    /// Selects the passivity test (default: the paper's proposed SHH test).
    #[must_use]
    pub fn method(mut self, method: Method) -> Self {
        self.request.method = method;
        self
    }

    /// Enables passivity enforcement on non-passive verdicts.
    #[must_use]
    pub fn repair(mut self, repair: bool) -> Self {
        self.request.repair = repair;
        self
    }

    /// Routes the check through the sparse-stamp + block-Krylov reduction
    /// (only netlist-backed sources; see [`CheckRequest::reduce`]).
    #[must_use]
    pub fn reduce(mut self, spec: ReduceSpec) -> Self {
        self.request.reduce = Some(spec);
        self
    }

    /// Finalizes the request without running it.
    pub fn build(self) -> CheckRequest {
        self.request
    }

    /// Builds and runs the request.
    ///
    /// # Errors
    ///
    /// See [`CheckRequest::run`].
    pub fn run(self) -> Result<CheckOutcome, SuiteError> {
        self.request.run()
    }
}

/// Replays per-stage timings onto the active trace (if any) as zero-width
/// child spans named with the canonical [`ds_obs::STAGES`] list — the one
/// clock path both the bench binaries and the daemon's stage histograms
/// read from.  A no-op when the calling thread is not tracing.
fn emit_stage_spans(stage_ns: &[u64; 8]) {
    if !ds_obs::trace::is_active() {
        return;
    }
    for (name, ns) in ds_obs::STAGES.iter().zip(stage_ns) {
        ds_obs::trace::emit_ns(name, *ns);
    }
}

fn gate_lmi(method: Method, order: usize) -> Result<(), SuiteError> {
    if method == Method::Lmi && order > LMI_MAX_ORDER {
        return Err(SuiteError::Unsupported(format!(
            "the LMI baseline is gated to orders <= {LMI_MAX_ORDER} (requested order {order})"
        )));
    }
    Ok(())
}

fn repair_outcome(system: &DescriptorSystem) -> Result<RepairOutcome, SuiteError> {
    match enforce_passivity(system, &EnforcementOptions::default())? {
        EnforcementOutcome::AlreadyPassive { .. } => Ok(RepairOutcome {
            enforced: false,
            resistance: 0.0,
            passive_after: true,
            reason: String::new(),
        }),
        EnforcementOutcome::Enforced { resistance, .. } => Ok(RepairOutcome {
            enforced: true,
            resistance,
            passive_after: true,
            reason: String::new(),
        }),
        EnforcementOutcome::NotEnforceable { reason } => {
            let verdict = PassivityVerdict::NotPassive { reason };
            let (_, _, slug) = verdict_fields(&verdict);
            Ok(RepairOutcome {
                enforced: false,
                resistance: 0.0,
                passive_after: false,
                reason: slug.to_string(),
            })
        }
    }
}

impl CheckRequest {
    /// Runs the check.
    ///
    /// # Errors
    ///
    /// Returns [`SuiteError::Parse`] (with line/column) for malformed deck
    /// text, [`SuiteError::Circuit`] for stamping failures, and
    /// [`SuiteError::Unsupported`] for the LMI baseline above its practical
    /// order limit.  A *structurally failing method* is not an error: it is
    /// recorded in [`CheckOutcome::status`], matching the sweep engine.
    pub fn run(&self) -> Result<CheckOutcome, SuiteError> {
        let _check_span = ds_obs::trace::span("check");
        match &self.source {
            CheckSource::DeckText { name, text } => {
                let deck = {
                    let _parse_span = ds_obs::trace::span("parse");
                    ds_netlist::parse_deck(text)?
                };
                let name = name
                    .clone()
                    .unwrap_or_else(|| format!("{:016x}", deck.content_hash()));
                if let Some(spec) = &self.reduce {
                    return self.run_reduced(&name, &deck.netlist, deck.expect, Some(&deck), spec);
                }
                self.run_deck(&name, &deck)
            }
            CheckSource::Deck { name, deck } => {
                if let Some(spec) = &self.reduce {
                    return self.run_reduced(name, &deck.netlist, deck.expect, Some(deck), spec);
                }
                self.run_deck(name, deck)
            }
            CheckSource::Netlist { name, netlist } => {
                if let Some(spec) = &self.reduce {
                    return self.run_reduced(name, netlist, None, None, spec);
                }
                let system = {
                    let _stamp_span = ds_obs::trace::span("stamp");
                    mna::stamp(netlist)?
                };
                let model = CircuitModel {
                    name: name.clone(),
                    system,
                    expected_passive: netlist.is_passive_by_construction(),
                    has_impulsive_modes: false,
                };
                self.run_model(&model, "netlist", true)
            }
            CheckSource::Model(model) => {
                self.reject_reduce("model")?;
                self.run_model(model, "model", true)
            }
            CheckSource::System { name, system } => {
                self.reject_reduce("system")?;
                let model = CircuitModel {
                    name: name.clone(),
                    system: system.as_ref().clone(),
                    expected_passive: false,
                    has_impulsive_modes: false,
                };
                self.run_model(&model, "system", false)
            }
        }
    }

    fn reject_reduce(&self, family: &str) -> Result<(), SuiteError> {
        if self.reduce.is_some() {
            return Err(SuiteError::Unsupported(format!(
                "Krylov reduction needs a netlist to stamp sparsely; {family} sources are already dense"
            )));
        }
        Ok(())
    }

    /// The reduce-then-verify path: sparse MNA stamp, PRIMA-style projection,
    /// then the ordinary dense check on the reduced model.  The outcome keeps
    /// the *original* order in [`CheckOutcome::order`] and records the
    /// achieved order / truncation residual / reduction time.
    fn run_reduced(
        &self,
        name: &str,
        netlist: &Netlist,
        expect: Option<bool>,
        deck: Option<&Deck>,
        spec: &ReduceSpec,
    ) -> Result<CheckOutcome, SuiteError> {
        let start = Instant::now();
        let sparse = {
            let _stamp_span = ds_obs::trace::span("stamp_sparse");
            mna::stamp_sparse(netlist)?
        };
        let original_order = sparse.order();
        let reduction = {
            let _reduce_span = ds_obs::trace::span("reduce");
            krylov::reduce_prima(
                &sparse.c_matrix(),
                &sparse.g_matrix(),
                &sparse.b_dense(),
                spec,
            )?
        };
        let reduction_ns = start.elapsed().as_nanos() as u64;
        // Ground truth without the dense whole-matrix PSD check of
        // `is_passive_by_construction`: a successful sparse stamp has already
        // validated the coupled inductance blocks per connected component, so
        // passivity-by-construction reduces to element-wise passivity.
        let expected = expect.unwrap_or_else(|| {
            netlist
                .elements
                .iter()
                .all(ds_circuits::Element::is_passive)
        });
        let model = CircuitModel {
            name: name.to_string(),
            system: reduction.system,
            expected_passive: expected,
            has_impulsive_modes: false,
        };
        let family = if deck.is_some() { "deck" } else { "netlist" };
        let mut outcome = self.run_model(&model, family, true)?;
        outcome.order = original_order;
        outcome.reduced_order = Some(reduction.reduced_order);
        outcome.residual = Some(reduction.residual);
        outcome.reduction_ns = Some(reduction_ns);
        if let Some(deck) = deck {
            let hash = deck.content_hash();
            outcome.canonical_hash = Some(hash);
            outcome.key = ds_harness::deck_seed(hash);
        }
        Ok(outcome)
    }

    /// Deck sources execute through the sweep engine's single-task entry
    /// point, so the outcome's deterministic fields — and therefore the
    /// daemon's cached reports — are identical to what `ds-sweep --decks`
    /// records for the same canonical deck.
    fn run_deck(&self, name: &str, deck: &Deck) -> Result<CheckOutcome, SuiteError> {
        let scenario = Scenario::from_deck(name, deck);
        gate_lmi(self.method, scenario.order())?;
        let task = SweepTask {
            scenario,
            method: self.method,
        };
        let record = {
            let _method_span = ds_obs::trace::span("method");
            let record = run_single(&task, 0);
            if let Some(stage_ns) = &record.stage_ns {
                emit_stage_spans(stage_ns);
            }
            record
        };
        if record.status == TaskStatus::BuildError {
            // The deck parsed but cannot be stamped (e.g. an indefinite
            // coupled-inductance block): surface it as a circuit error.
            return Err(SuiteError::Harness(format!(
                "stamping deck '{name}': {}",
                record.reason
            )));
        }
        let mut outcome = CheckOutcome::from_record(&record);
        outcome.name = name.to_string();
        outcome.canonical_hash = Some(deck.content_hash());
        if self.repair {
            let _repair_span = ds_obs::trace::span("repair");
            outcome.repair = Some(if outcome.passive == Some(false) {
                let system = mna::stamp(&deck.netlist)?;
                repair_outcome(&system)?
            } else {
                RepairOutcome {
                    enforced: false,
                    resistance: 0.0,
                    passive_after: outcome.passive == Some(true),
                    reason: String::new(),
                }
            });
        }
        Ok(outcome)
    }

    fn run_model(
        &self,
        model: &CircuitModel,
        family: &'static str,
        has_ground_truth: bool,
    ) -> Result<CheckOutcome, SuiteError> {
        gate_lmi(self.method, model.system.order())?;
        let mut outcome = CheckOutcome {
            name: model.name.clone(),
            family,
            key: 0,
            canonical_hash: None,
            method: self.method,
            status: TaskStatus::Ok,
            order: model.system.order(),
            ports: model.system.num_inputs(),
            passive: None,
            strict: false,
            reason: String::new(),
            expected_passive: has_ground_truth.then_some(model.expected_passive),
            agrees: None,
            reduced_order: None,
            residual: None,
            reduction_ns: None,
            elapsed: Duration::ZERO,
            repair: None,
            report: None,
            record: None,
        };
        let start = Instant::now();
        let result = {
            let _method_span = ds_obs::trace::span("method");
            let result = run_method(self.method, model);
            if let Ok(report) = &result {
                emit_stage_spans(&stage_ns_array(&report.timings));
            }
            result
        };
        match result {
            Ok(report) => {
                outcome.elapsed = start.elapsed();
                let (passive, strict, slug) = verdict_fields(&report.verdict);
                outcome.passive = Some(passive);
                outcome.strict = strict;
                outcome.reason = slug.to_string();
                if has_ground_truth {
                    outcome.agrees = Some(passive == model.expected_passive);
                }
                outcome.report = Some(report);
            }
            Err(e) => {
                outcome.elapsed = start.elapsed();
                outcome.status = TaskStatus::MethodError;
                outcome.reason = e.to_string();
            }
        }
        if self.repair {
            let _repair_span = ds_obs::trace::span("repair");
            outcome.repair = Some(if outcome.passive == Some(false) {
                repair_outcome(&model.system)?
            } else {
                RepairOutcome {
                    enforced: false,
                    resistance: 0.0,
                    passive_after: outcome.passive == Some(true),
                    reason: String::new(),
                }
            });
        }
        Ok(outcome)
    }
}

/// Loads every `*.cir` deck under `dir` as sweep scenarios, with harness
/// errors lifted into [`SuiteError`] — the deck-ingestion entry point shared
/// by `ds-sweep --decks`, the daemon's corpus warm-up, and the load
/// generator.
///
/// # Errors
///
/// Reports I/O failures and the first parse failure (with its file path).
pub fn load_deck_scenarios(dir: &std::path::Path) -> Result<Vec<Scenario>, SuiteError> {
    ds_harness::deck_scenarios_from_dir(dir).map_err(SuiteError::Harness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_circuits::generators;
    use ds_harness::{run_sweep, scenario_matrix, SweepSpec};

    const DECK: &str =
        "* divider\nR1 in mid 2\nL1 mid out 0.5\nC1 out 0 1\nR2 out 0 10\n.port in\n.end\n";

    #[test]
    fn deck_text_checks_and_names_default_to_the_hash() {
        let outcome = PassivityCheck::deck_text(DECK).run().unwrap();
        assert_eq!(outcome.family, "deck");
        assert_eq!(outcome.status, TaskStatus::Ok);
        assert_eq!(outcome.passive, Some(true));
        assert_eq!(outcome.agrees, Some(true));
        let hash = outcome.canonical_hash.unwrap();
        assert_eq!(outcome.name, format!("{hash:016x}"));
        assert_eq!(outcome.key, ds_harness::deck_seed(hash));
        assert!(outcome.record.is_some());
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = PassivityCheck::deck_text("R1 in 0 nonsense\n.port in\n.end\n")
            .run()
            .unwrap_err();
        let (line, col) = err.parse_location().expect("parse location");
        assert_eq!(line, 1);
        assert!(col > 1);
    }

    #[test]
    fn deck_outcomes_match_sweep_records_field_for_field() {
        let deck = ds_netlist::parse_deck(DECK).unwrap();
        let scenario = Scenario::from_deck("divider", &deck);
        for method in [Method::Proposed, Method::Weierstrass, Method::Lmi] {
            let tasks = scenario_matrix(std::slice::from_ref(&scenario), &[method]);
            let sweep = run_sweep(&SweepSpec::new(tasks, 1));
            let from_sweep = CheckOutcome::from_record(&sweep.records[0]).report_json();
            let fresh = PassivityCheck::deck("divider", deck.clone())
                .method(method)
                .run()
                .unwrap()
                .report_json();
            assert_eq!(fresh, from_sweep, "{method} diverged from the engine");
        }
    }

    #[test]
    fn report_json_is_deterministic_and_name_free() {
        let a = PassivityCheck::deck_text(DECK).run().unwrap();
        let b = PassivityCheck::deck_text(DECK).name("other").run().unwrap();
        assert_eq!(a.report_json(), b.report_json());
        assert!(a
            .report_json()
            .starts_with("{\"schema\":\"ds-check-report/v2\""));
    }

    #[test]
    fn report_json_is_identical_with_and_without_volatile_timings() {
        let outcome = PassivityCheck::deck_text(DECK).run().unwrap();
        let record = outcome.record.clone().expect("deck record");
        // The record must actually carry timings, or the exclusion check
        // below would pass vacuously.
        assert!(record.stage_ns.is_some(), "record lost its stage timings");
        assert!(record.elapsed > Duration::ZERO);
        let mut stripped = record.clone();
        stripped.stage_ns = None;
        stripped.elapsed = Duration::ZERO;
        stripped.worker = 0;
        assert_eq!(
            CheckOutcome::from_record(&record).report_json(),
            CheckOutcome::from_record(&stripped).report_json()
        );
        for leaked in ["stage_ns", "elapsed", "worker", "start_ns"] {
            assert!(
                !outcome.report_json().contains(leaked),
                "volatile field {leaked:?} leaked into the stable report"
            );
        }
    }

    #[test]
    fn tracing_captures_stage_spans_without_changing_the_report() {
        let untraced = PassivityCheck::deck_text(DECK).run().unwrap();
        ds_obs::trace::begin("pipeline-test");
        let traced = PassivityCheck::deck_text(DECK).run().unwrap();
        let trace = ds_obs::trace::end().expect("trace");
        // Verdicts are byte-identical with tracing on.
        assert_eq!(untraced.report_json(), traced.report_json());
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in ["check", "parse", "method"] {
            assert!(
                names.contains(&expected),
                "missing span {expected}: {names:?}"
            );
        }
        for stage in ds_obs::STAGES {
            assert!(
                names.contains(&stage),
                "missing stage span {stage}: {names:?}"
            );
        }
        let find = |name: &str| trace.spans.iter().find(|s| s.name == name).unwrap();
        assert_eq!(find("check").parent, None);
        assert_eq!(find("parse").parent, Some(find("check").seq));
        assert_eq!(find("total").parent, Some(find("method").seq));
        assert!(find("total").elapsed_ns > 0);
        let stage_sum: u64 = ds_obs::STAGES[..7].iter().map(|s| find(s).elapsed_ns).sum();
        assert_eq!(stage_sum, find("total").elapsed_ns);
    }

    #[test]
    fn model_sources_keep_ground_truth_and_report() {
        let model = generators::nonpassive_ladder(8).unwrap();
        let outcome = PassivityCheck::model(model).run().unwrap();
        assert_eq!(outcome.passive, Some(false));
        assert_eq!(outcome.agrees, Some(true));
        assert!(outcome.report.is_some());
        assert!(!outcome.reason.is_empty());
    }

    #[test]
    fn system_sources_have_no_ground_truth() {
        let model = generators::rc_ladder(4, 1.0, 1.0).unwrap();
        let outcome = PassivityCheck::system("bare", model.system).run().unwrap();
        assert_eq!(outcome.passive, Some(true));
        assert_eq!(outcome.expected_passive, None);
        assert_eq!(outcome.agrees, None);
    }

    #[test]
    fn repair_enforces_a_repairable_violation() {
        let model = generators::nonpassive_ladder(8).unwrap();
        let outcome = PassivityCheck::model(model).repair(true).run().unwrap();
        let repair = outcome.repair.expect("repair outcome");
        assert!(repair.enforced);
        assert!(repair.resistance > 0.0);
        assert!(repair.passive_after);
        // A passive model asks for no perturbation.
        let passive = generators::rc_ladder(4, 1.0, 1.0).unwrap();
        let outcome = PassivityCheck::model(passive).repair(true).run().unwrap();
        let repair = outcome.repair.expect("repair outcome");
        assert!(!repair.enforced);
        assert_eq!(repair.resistance, 0.0);
        assert!(repair.passive_after);
    }

    #[test]
    fn repair_reports_unenforceable_violations() {
        let model = generators::negative_m1_model(8).unwrap();
        let outcome = PassivityCheck::model(model).repair(true).run().unwrap();
        let repair = outcome.repair.expect("repair outcome");
        assert!(!repair.enforced);
        assert!(!repair.passive_after);
        assert!(!repair.reason.is_empty());
    }

    #[test]
    fn reduce_path_agrees_with_the_dense_check() {
        let netlist = generators::reduced_ladder_netlist(100, true).unwrap();
        let dense = PassivityCheck::netlist("ladder", netlist.clone())
            .run()
            .unwrap();
        let reduced = PassivityCheck::netlist("ladder", netlist)
            .reduce(ReduceSpec::default())
            .run()
            .unwrap();
        assert_eq!(reduced.passive, dense.passive);
        assert_eq!(reduced.passive, Some(true));
        assert_eq!(reduced.agrees, Some(true));
        // The outcome reports the original order plus the compression.
        assert_eq!(reduced.order, dense.order);
        assert_eq!(reduced.reduced_order, Some(48));
        assert!(reduced.residual.unwrap() >= 0.0);
        assert!(reduced.reduction_ns.unwrap() > 0);
        assert!(dense.reduced_order.is_none());
        // The reduction shows up in the stable report; its timing does not.
        let report = reduced.report_json();
        assert!(report.contains("\"reduced_order\":48"));
        assert!(!report.contains("reduction_ns"));
    }

    #[test]
    fn reduce_path_traces_sparse_stamp_and_projection() {
        ds_obs::trace::begin("reduce-test");
        let outcome = PassivityCheck::deck_text(DECK)
            .reduce(ReduceSpec::default())
            .run()
            .unwrap();
        let trace = ds_obs::trace::end().expect("trace");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in ["check", "parse", "stamp_sparse", "reduce", "method"] {
            assert!(
                names.contains(&expected),
                "missing span {expected}: {names:?}"
            );
        }
        // Order 4 passes through the projection exactly, so the verdict
        // matches the direct check field-for-field except the reduce fields.
        assert_eq!(outcome.passive, Some(true));
        assert_eq!(outcome.reduced_order, Some(outcome.order));
        assert_eq!(outcome.residual, Some(0.0));
        let direct = PassivityCheck::deck_text(DECK).run().unwrap();
        assert_eq!(outcome.key, direct.key);
        assert_eq!(outcome.canonical_hash, direct.canonical_hash);
        assert_eq!(outcome.family, "deck");
    }

    #[test]
    fn reduce_is_rejected_for_dense_sources() {
        let model = generators::rc_ladder(4, 1.0, 1.0).unwrap();
        let err = PassivityCheck::system("bare", model.system.clone())
            .reduce(ReduceSpec::default())
            .run()
            .unwrap_err();
        assert_eq!(err.kind(), "unsupported");
        let err = PassivityCheck::model(model)
            .reduce(ReduceSpec::default())
            .run()
            .unwrap_err();
        assert_eq!(err.kind(), "unsupported");
    }

    #[test]
    fn lmi_is_gated_above_its_practical_order() {
        let model = generators::rlc_ladder_with_impulsive(80).unwrap();
        let err = PassivityCheck::model(model)
            .method(Method::Lmi)
            .run()
            .unwrap_err();
        assert_eq!(err.kind(), "unsupported");
    }
}
