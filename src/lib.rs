//! # ds-passivity-suite
//!
//! Umbrella crate for the DAC 2006 descriptor-system passivity-test
//! reproduction: it re-exports the individual crates and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! The individual pieces live in:
//!
//! * [`linalg`] (`ds-linalg`) — dense linear-algebra kernels,
//! * [`descriptor`] (`ds-descriptor`) — descriptor systems, transforms,
//!   impulse tests, Weierstrass decomposition,
//! * [`shh`] (`ds-shh`) — skew-Hamiltonian/Hamiltonian pencils and
//!   structure-preserving transformations,
//! * [`circuits`] (`ds-circuits`) — RLC/MNA workload generators (single-port
//!   ladders/grids plus the multiport, coupled-mesh, transmission-line and
//!   near-boundary families), with native `K` mutual-inductance couplings,
//! * [`netlist`] (`ds-netlist`) — the SPICE-deck front-end: text parser with
//!   line/column diagnostics, canonical renderer and content hashing,
//! * [`lmi`] (`ds-lmi`) — the LMI / Riccati substrate,
//! * [`passivity`] (`ds-passivity`) — the paper's fast test and the two
//!   baselines,
//! * [`harness`] (`ds-harness`) — the deterministic parallel sweep engine
//!   (scenario matrix × worker pool → JSONL/CSV artifacts + summaries) and
//!   the persistent result store (fingerprint-keyed resume, `--shard i/m`
//!   partitioning, lossless segment merge for 10⁵-scenario ensembles).
//!
//! ```
//! use ds_passivity_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = ds_passivity_suite::circuits::generators::rlc_ladder_with_impulsive(10)?;
//! let report = check_passivity(&model.system, &FastTestOptions::default())?;
//! assert!(report.verdict.is_passive());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod pipeline;

pub use error::SuiteError;
pub use pipeline::{
    load_deck_scenarios, CheckOutcome, CheckRequest, CheckSource, PassivityCheck, RepairOutcome,
    REPORT_SCHEMA,
};

pub use ds_circuits as circuits;
pub use ds_descriptor as descriptor;
pub use ds_harness as harness;
pub use ds_linalg as linalg;
pub use ds_lmi as lmi;
pub use ds_netlist as netlist;
pub use ds_passivity as passivity;
pub use ds_shh as shh;

/// The most common imports for users of the suite.
pub mod prelude {
    pub use crate::error::SuiteError;
    pub use crate::pipeline::{
        load_deck_scenarios, CheckOutcome, CheckRequest, CheckSource, PassivityCheck, RepairOutcome,
    };
    pub use ds_descriptor::prelude::*;
    pub use ds_harness::prelude::*;
    pub use ds_linalg::prelude::*;
    pub use ds_passivity::fast::{check_passivity, FastTestOptions};
    pub use ds_passivity::prelude::*;
    pub use ds_shh::krylov::ReduceSpec;
}

/// Runs the proposed test and the Weierstrass baseline on the same system and
/// returns both reports — a convenience used by the examples and integration
/// tests to cross-check results.
///
/// # Errors
///
/// Propagates structural failures from either test.
pub fn cross_check(
    sys: &ds_descriptor::DescriptorSystem,
) -> Result<
    (ds_passivity::PassivityReport, ds_passivity::PassivityReport),
    ds_passivity::PassivityError,
> {
    let fast =
        ds_passivity::fast::check_passivity(sys, &ds_passivity::fast::FastTestOptions::default())?;
    let weierstrass = ds_passivity::weierstrass_test::check_passivity_weierstrass(
        sys,
        &ds_passivity::weierstrass_test::WeierstrassTestOptions::default(),
    )?;
    Ok((fast, weierstrass))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_check_on_a_small_passive_circuit() {
        let model = circuits::generators::rc_ladder(4, 1.0, 1.0).unwrap();
        let (fast, weierstrass) = cross_check(&model.system).unwrap();
        assert!(fast.verdict.is_passive());
        assert!(weierstrass.verdict.is_passive());
    }

    #[test]
    fn cross_check_rejects_a_nonpassive_ladder() {
        let model = circuits::generators::nonpassive_ladder(6).unwrap();
        assert!(!model.expected_passive);
        let (fast, weierstrass) = cross_check(&model.system).unwrap();
        assert!(
            !fast.verdict.is_passive(),
            "fast test accepted: {}",
            fast.verdict
        );
        assert!(
            !weierstrass.verdict.is_passive(),
            "weierstrass baseline accepted: {}",
            weierstrass.verdict
        );
    }

    #[test]
    fn cross_check_rejects_a_violation_at_infinity() {
        // Negative port inductance: the violation sits at ω = ∞ (non-PSD M₁),
        // the case the paper's structured route detects without a frequency
        // sweep.  Both methods must agree on rejection.
        let model = circuits::generators::negative_m1_model(8).unwrap();
        assert!(!model.expected_passive);
        let (fast, weierstrass) = cross_check(&model.system).unwrap();
        assert!(
            !fast.verdict.is_passive(),
            "fast test accepted: {}",
            fast.verdict
        );
        assert!(
            !weierstrass.verdict.is_passive(),
            "weierstrass baseline accepted: {}",
            weierstrass.verdict
        );
    }
}
