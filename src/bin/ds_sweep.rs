//! `ds-sweep`: the parallel sweep driver.
//!
//! Lives in the umbrella crate since the pipeline-API redesign: deck
//! ingestion and error handling route through the unified
//! `ds_passivity_suite` pipeline ([`load_deck_scenarios`] / [`SuiteError`]),
//! the same entry points the `ds-serve` daemon answers requests from, so a
//! sweep verdict and a served verdict can never diverge.
//!
//! ```console
//! $ cargo run -p ds-passivity-suite --release --bin ds-sweep -- \
//!       --preset standard --threads 4 --out-dir target/sweep
//! ```
//!
//! Options:
//!
//! * `--preset quick|golden|standard` — scenario ensemble (default `standard`);
//! * `--decks DIR` — sweep SPICE decks instead of a preset: every `*.cir`
//!   file under `DIR` (recursively, sorted by path) is parsed into a `deck`
//!   scenario and run through all methods (LMI gated by order as usual);
//!   deck fingerprints hash the canonicalized deck, so `--store`/`--resume`
//!   work across runs; conflicts with `--preset`/`--quick`/`--tasks`;
//! * `--family NAME` — sweep one scenario family across a size ladder (two
//!   seeds per size, all methods, LMI gated by order).  `--family reduced`
//!   defaults to sections 50/250/1000/5000 — original MNA orders up to
//!   10001 — running the sparse-stamp + Krylov reduce-then-verify path;
//!   conflicts with `--preset`/`--quick`/`--decks`/`--tasks`;
//! * `--sizes N,N,…` — override the `--family` size ladder;
//! * `--tasks N` — grow the standard preset until the matrix has ≥ N tasks;
//! * `--threads N` — worker-pool size (default: available parallelism);
//! * `--out-dir PATH` — artifact directory (default `target/sweep`);
//! * `--store DIR` — persistent result store: append this run's records as a
//!   run-stamped JSONL segment and (re)write the canonical merged artifacts
//!   (`merged.jsonl` / `merged.csv`) from all segments;
//! * `--resume` — skip tasks whose content fingerprints are already in the
//!   store (requires `--store`);
//! * `--shard I/M` — deterministic task partitioning: run only the tasks
//!   whose global index `% M == I`, keeping global indices so that the
//!   segments of `M` independent processes merge losslessly;
//! * `--stream` — print each record's JSONL line to stdout as it completes
//!   (completion order; the on-disk artifact stays sorted by task id);
//! * `--trace OUT.jsonl` — export every completed task's per-stage timings
//!   as a `ds-trace/v1` JSONL file (one trace per task, ids = the stable
//!   store fingerprints; render it with the `ds-trace` binary);
//! * `--no-violations` — skip the deterministic Popov-grid sampling;
//! * `--compare-single-thread` — rerun the same matrix on 1 thread and print
//!   the wall-clock speedup.
//!
//! The binary self-validates every artifact it wrote (JSONL and CSV are
//! parsed back with the in-tree parsers) and exits non-zero on any error.

use ds_passivity_suite::harness::artifacts::{self, SweepSummary};
use ds_passivity_suite::harness::{self as ds_harness, golden, prelude::*};
use ds_passivity_suite::{load_deck_scenarios, SuiteError};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

struct Args {
    preset: Option<String>,
    decks_dir: Option<PathBuf>,
    family: Option<String>,
    sizes: Option<Vec<usize>>,
    tasks_target: Option<usize>,
    threads: usize,
    out_dir: PathBuf,
    store_dir: Option<PathBuf>,
    resume: bool,
    shard: Option<(usize, usize)>,
    stream: bool,
    trace_out: Option<PathBuf>,
    sample_violations: bool,
    compare_single_thread: bool,
}

fn parse_shard(text: &str) -> Result<(usize, usize), SuiteError> {
    let (index, modulus) = text
        .split_once('/')
        .ok_or_else(|| SuiteError::InvalidRequest(format!("--shard expects I/M, got '{text}'")))?;
    let index: usize = index
        .parse()
        .map_err(|e| SuiteError::InvalidRequest(format!("--shard index: {e}")))?;
    let modulus: usize = modulus
        .parse()
        .map_err(|e| SuiteError::InvalidRequest(format!("--shard modulus: {e}")))?;
    if modulus == 0 || index >= modulus {
        return Err(SuiteError::InvalidRequest(format!(
            "--shard {index}/{modulus}: index must be < modulus and modulus > 0"
        )));
    }
    Ok((index, modulus))
}

fn parse_args() -> Result<Args, SuiteError> {
    let mut args = Args {
        preset: None,
        decks_dir: None,
        family: None,
        sizes: None,
        tasks_target: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        out_dir: PathBuf::from("target/sweep"),
        store_dir: None,
        resume: false,
        shard: None,
        stream: false,
        trace_out: None,
        sample_violations: true,
        compare_single_thread: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| SuiteError::InvalidRequest(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--preset" => args.preset = Some(value("--preset")?),
            "--decks" => args.decks_dir = Some(PathBuf::from(value("--decks")?)),
            "--family" => args.family = Some(value("--family")?),
            "--sizes" => args.sizes = Some(parse_sizes(&value("--sizes")?)?),
            "--tasks" => {
                args.tasks_target = Some(
                    value("--tasks")?
                        .parse()
                        .map_err(|e| SuiteError::InvalidRequest(format!("--tasks: {e}")))?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| SuiteError::InvalidRequest(format!("--threads: {e}")))?
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--store" => args.store_dir = Some(PathBuf::from(value("--store")?)),
            "--resume" => args.resume = true,
            "--shard" => args.shard = Some(parse_shard(&value("--shard")?)?),
            "--stream" => args.stream = true,
            "--trace" => args.trace_out = Some(PathBuf::from(value("--trace")?)),
            "--no-violations" => args.sample_violations = false,
            "--compare-single-thread" => args.compare_single_thread = true,
            "--quick" => args.preset = Some("quick".to_string()),
            other => {
                return Err(SuiteError::InvalidRequest(format!(
                    "unknown argument: {other}"
                )))
            }
        }
    }
    if args.resume && args.store_dir.is_none() {
        return Err(SuiteError::InvalidRequest(
            "--resume requires --store DIR".into(),
        ));
    }
    if args.decks_dir.is_some() && (args.preset.is_some() || args.tasks_target.is_some()) {
        return Err(SuiteError::InvalidRequest(
            "--decks builds the matrix from the deck files; drop --preset/--quick/--tasks".into(),
        ));
    }
    if args.family.is_some()
        && (args.preset.is_some() || args.decks_dir.is_some() || args.tasks_target.is_some())
    {
        return Err(SuiteError::InvalidRequest(
            "--family builds a single-family matrix; drop --preset/--quick/--decks/--tasks".into(),
        ));
    }
    if args.sizes.is_some() && args.family.is_none() {
        return Err(SuiteError::InvalidRequest(
            "--sizes requires --family NAME".into(),
        ));
    }
    Ok(args)
}

fn parse_sizes(text: &str) -> Result<Vec<usize>, SuiteError> {
    let sizes: Result<Vec<usize>, _> = text.split(',').map(str::parse).collect();
    let sizes = sizes.map_err(|e| SuiteError::InvalidRequest(format!("--sizes '{text}': {e}")))?;
    if sizes.is_empty() {
        return Err(SuiteError::InvalidRequest("--sizes needs values".into()));
    }
    Ok(sizes)
}

/// Default size ladder for `--family`.  The `reduced` family climbs to
/// 5000 sections — original MNA order 10001 — exercising the sparse
/// reduce-then-verify path at the paper's "NIL for dense methods" scale.
fn default_family_sizes(family: ds_harness::scenario::FamilyKind) -> Vec<usize> {
    use ds_harness::scenario::FamilyKind;
    match family {
        FamilyKind::Reduced => vec![50, 250, 1000, 5000],
        _ => vec![4, 8, 16],
    }
}

fn build_tasks(args: &Args) -> Result<Vec<SweepTask>, SuiteError> {
    let methods = [Method::Proposed, Method::Weierstrass, Method::Lmi];
    if let Some(dir) = &args.decks_dir {
        let scenarios = load_deck_scenarios(dir)?;
        eprintln!("# decks: {} parsed from {}", scenarios.len(), dir.display());
        return Ok(scenario_matrix(&scenarios, &methods));
    }
    if let Some(name) = &args.family {
        use ds_harness::scenario::{FamilyKind, Scenario};
        let family = FamilyKind::parse(name).ok_or_else(|| {
            let names: Vec<&str> = FamilyKind::ALL.iter().map(|f| f.name()).collect();
            SuiteError::InvalidRequest(format!(
                "unknown family '{name}' (one of: {})",
                names.join(", ")
            ))
        })?;
        if family == FamilyKind::Deck {
            return Err(SuiteError::InvalidRequest(
                "the deck family needs deck files; use --decks DIR".into(),
            ));
        }
        let sizes = args
            .sizes
            .clone()
            .unwrap_or_else(|| default_family_sizes(family));
        let mut scenarios = Vec::new();
        for &size in &sizes {
            for seed in 0..2u64 {
                scenarios.push(Scenario::new(family, size).with_seed(seed));
            }
        }
        let max_order = scenarios.iter().map(Scenario::order).max().unwrap_or(0);
        eprintln!("# family {name}: sizes {sizes:?} x 2 seeds (max order {max_order})");
        return Ok(scenario_matrix(&scenarios, &methods));
    }
    match args.preset.as_deref().unwrap_or("standard") {
        "quick" => Ok(scenario_matrix(
            &quick_scenarios(),
            &[Method::Proposed, Method::Weierstrass],
        )),
        "golden" => Ok(golden::golden_tasks()),
        "standard" => Ok(match args.tasks_target {
            Some(target) => standard_tasks(target),
            None => scenario_matrix(&standard_scenarios(2), &methods),
        }),
        other => Err(SuiteError::InvalidRequest(format!(
            "unknown preset: {other}"
        ))),
    }
}

/// A collision-free stamp for this run's store segment: wall-clock nanos
/// since the epoch plus the process id (two shards launched in the same
/// nanosecond still differ by pid).
fn run_stamp() -> String {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    format!("{nanos}-{}", std::process::id())
}

fn run() -> Result<(), SuiteError> {
    let args = parse_args()?;
    let full_matrix = build_tasks(&args)?;
    let matrix_len = full_matrix.len();

    // Deterministic inter-process partitioning: global ids survive into the
    // records so shard segments merge back into the single-process artifact.
    let mut indexed: Vec<(usize, SweepTask)> = match args.shard {
        Some((index, modulus)) => ds_harness::shard_tasks(&full_matrix, index, modulus),
        None => full_matrix.iter().cloned().enumerate().collect(),
    };
    if let Some((index, modulus)) = args.shard {
        eprintln!(
            "# shard {index}/{modulus}: {} of {matrix_len} tasks",
            indexed.len()
        );
    }

    let mut store = match &args.store_dir {
        Some(dir) => Some(ds_harness::ResultStore::open(dir).map_err(SuiteError::Harness)?),
        None => None,
    };
    let mut skipped = 0usize;
    if args.resume {
        let store = store.as_ref().expect("--resume implies --store");
        let (pending, n_skipped) = store.partition_pending(indexed);
        indexed = pending;
        skipped = n_skipped;
        eprintln!(
            "# resume: {} tasks already fingerprinted in {}, {} to run",
            skipped,
            store.dir().display(),
            indexed.len()
        );
    }

    let matrix_source = match (&args.decks_dir, &args.family) {
        (Some(dir), _) => format!("decks:{}", dir.display()),
        (None, Some(family)) => format!("family:{family}"),
        (None, None) => args.preset.clone().unwrap_or_else(|| "standard".into()),
    };
    eprintln!(
        "# ds-sweep: matrix={} tasks={} threads={}",
        matrix_source,
        indexed.len(),
        args.threads
    );

    let task_ids: Vec<usize> = indexed.iter().map(|(id, _)| *id).collect();
    let tasks: Vec<SweepTask> = indexed.into_iter().map(|(_, task)| task).collect();

    let stdout = Mutex::new(std::io::stdout());
    let stream_cb = |record: &SweepRecord| {
        let line = artifacts::jsonl_line(record);
        let mut out = ds_harness::sync::lock_infallible(&stdout);
        let _ = writeln!(out, "{line}");
    };
    let spec = SweepSpec {
        tasks: tasks.clone(),
        threads: args.threads,
        sample_violations: args.sample_violations,
        task_ids: Some(task_ids),
    };
    let result = run_sweep_with_progress(&spec, if args.stream { Some(&stream_cb) } else { None });

    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| SuiteError::Io(format!("creating {}: {e}", args.out_dir.display())))?;
    let jsonl_path = args.out_dir.join("sweep.jsonl");
    let csv_path = args.out_dir.join("sweep.csv");
    let summary_path = args.out_dir.join("summary.txt");

    let jsonl = ds_harness::render_jsonl(&result.records);
    let csv = ds_harness::render_csv(&result.records);
    std::fs::write(&jsonl_path, &jsonl)
        .map_err(|e| SuiteError::Io(format!("writing {}: {e}", jsonl_path.display())))?;
    std::fs::write(&csv_path, &csv)
        .map_err(|e| SuiteError::Io(format!("writing {}: {e}", csv_path.display())))?;

    // Self-validation: read the artifacts back and parse them.
    let jsonl_back = std::fs::read_to_string(&jsonl_path)
        .map_err(|e| SuiteError::Io(format!("reading back {}: {e}", jsonl_path.display())))?;
    let jsonl_records = ds_harness::validate_jsonl(&jsonl_back)
        .map_err(|e| SuiteError::Harness(format!("JSONL artifact invalid: {e}")))?;
    let csv_back = std::fs::read_to_string(&csv_path)
        .map_err(|e| SuiteError::Io(format!("reading back {}: {e}", csv_path.display())))?;
    let csv_records = ds_harness::validate_csv(&csv_back)
        .map_err(|e| SuiteError::Harness(format!("CSV artifact invalid: {e}")))?;
    if jsonl_records != result.records.len() || csv_records != result.records.len() {
        return Err(SuiteError::Harness(format!(
            "artifact record counts diverge: jsonl={jsonl_records} csv={csv_records} expected={}",
            result.records.len()
        )));
    }

    if let Some(trace_path) = &args.trace_out {
        let mut text = String::new();
        let mut traced = 0usize;
        for record in &result.records {
            let Some(stage_ns) = &record.stage_ns else {
                continue; // errored tasks have no stage timings
            };
            let stages: Vec<(&str, u64)> = ds_obs::STAGES[..ds_obs::STAGES.len() - 1]
                .iter()
                .zip(stage_ns)
                .map(|(name, ns)| (*name, *ns))
                .collect();
            let trace = ds_obs::trace::Trace::from_stage_durations(
                &ds_harness::record_fingerprint(record),
                "total",
                stage_ns[stage_ns.len() - 1],
                &stages,
            );
            text.push_str(&trace.render_jsonl());
            traced += 1;
        }
        std::fs::write(trace_path, &text)
            .map_err(|e| SuiteError::Io(format!("writing {}: {e}", trace_path.display())))?;
        println!(
            "# trace: {} per-task stage traces -> {} (render with: cargo run --release --bin ds-trace -- {})",
            traced,
            trace_path.display(),
            trace_path.display()
        );
    }

    if let Some(store) = store.as_mut() {
        if let Some(segment) = store
            .append_segment(&run_stamp(), &result.records)
            .map_err(SuiteError::Harness)?
        {
            eprintln!("# store: appended segment {}", segment.display());
        }
        let (merged_jsonl, merged_csv, merged_count) =
            store.write_merged().map_err(SuiteError::Harness)?;
        println!(
            "# store: {} records across all segments -> {} / {}",
            merged_count,
            merged_jsonl.display(),
            merged_csv.display()
        );
    }

    let summary = SweepSummary::from_result(&result);
    let mut summary_text = summary.render();

    if args.compare_single_thread {
        eprintln!("# rerunning on 1 thread for the speedup comparison…");
        let single = run_sweep(&SweepSpec {
            threads: 1,
            ..spec.clone()
        });
        summary_text.push_str(&artifacts::render_speedup(&single, &result));
        summary_text.push('\n');
    }

    std::fs::write(&summary_path, &summary_text)
        .map_err(|e| SuiteError::Io(format!("writing {}: {e}", summary_path.display())))?;
    print!("{summary_text}");
    println!(
        "# executed: {} tasks (skipped {} already stored) of {} in matrix",
        result.records.len(),
        skipped,
        matrix_len
    );
    println!(
        "# artifacts validated: {} ({} records), {} ({} records)",
        jsonl_path.display(),
        jsonl_records,
        csv_path.display(),
        csv_records
    );
    println!(
        "# eigen workspace pools: {} hits / {} misses across {} workers ({:.0} KiB resident)",
        result.workspace.hits,
        result.workspace.misses,
        result.threads,
        result.workspace.resident_bytes as f64 / 1024.0
    );
    if summary.total_errors > 0 {
        return Err(SuiteError::Harness(format!(
            "{} tasks errored",
            summary.total_errors
        )));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ds-sweep: {e}");
            ExitCode::FAILURE
        }
    }
}
