//! `ds-trace`: renders `ds-trace/v1` JSONL files as a sorted text flame
//! tree with per-stage totals and percentages.
//!
//! ```console
//! $ cargo run -p ds-passivity-suite --release --bin ds-trace -- trace.jsonl
//! ```
//!
//! Input files come from `ds-sweep --trace OUT.jsonl` or from the daemon's
//! `GET /trace/<id>` endpoint; multiple files (or multi-trace files) are
//! aggregated into one tree.

use ds_obs::trace::{SpanRecord, Trace, TRACE_SCHEMA};
use ds_passivity_suite::harness::json;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usize_field(value: &json::Value, key: &str) -> Result<usize, String> {
    value
        .get(key)
        .and_then(json::Value::as_f64)
        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
        .map(|n| n as usize)
        .ok_or_else(|| format!("key '{key}' is not a non-negative integer"))
}

fn ns_field(value: &json::Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(json::Value::as_f64)
        .filter(|n| *n >= 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("key '{key}' is not a non-negative number"))
}

/// Parses one `ds-trace/v1` JSONL document into its traces, in first-seen
/// order, spans sorted by `seq`.
fn parse_traces(text: &str) -> Result<Vec<Trace>, String> {
    let mut order: Vec<String> = Vec::new();
    let mut by_id: BTreeMap<String, Vec<SpanRecord>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parse = |e: String| format!("line {}: {e}", lineno + 1);
        let value = json::parse(line).map_err(parse)?;
        let schema = value
            .get("schema")
            .and_then(json::Value::as_str)
            .unwrap_or("");
        if schema != TRACE_SCHEMA {
            return Err(format!(
                "line {}: schema '{schema}' is not '{TRACE_SCHEMA}'",
                lineno + 1
            ));
        }
        let id = value
            .get("trace")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("line {}: missing trace id", lineno + 1))?
            .to_string();
        let parent = match value.get("parent") {
            None | Some(json::Value::Null) => None,
            Some(_) => Some(usize_field(&value, "parent").map_err(parse)?),
        };
        let span = SpanRecord {
            seq: usize_field(&value, "seq").map_err(parse)?,
            parent,
            depth: usize_field(&value, "depth").map_err(parse)?,
            name: value
                .get("span")
                .and_then(json::Value::as_str)
                .ok_or_else(|| format!("line {}: missing span name", lineno + 1))?
                .to_string(),
            start_ns: ns_field(&value, "start_ns").map_err(parse)?,
            elapsed_ns: ns_field(&value, "elapsed_ns").map_err(parse)?,
        };
        if !by_id.contains_key(&id) {
            order.push(id.clone());
        }
        by_id.entry(id).or_default().push(span);
    }
    Ok(order
        .into_iter()
        .map(|id| {
            let mut spans = by_id.remove(&id).unwrap_or_default();
            spans.sort_by_key(|s| s.seq);
            Trace { id, spans }
        })
        .collect())
}

fn run() -> Result<(), String> {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        return Err("usage: ds-trace FILE.jsonl [FILE.jsonl ...]".to_string());
    }
    let mut traces = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        traces.extend(parse_traces(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    if traces.is_empty() {
        return Err("no traces found in the input".to_string());
    }
    print!("{}", ds_obs::trace::render_flame(&traces));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ds-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
