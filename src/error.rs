//! The suite-wide error type.
//!
//! Before the unified pipeline API every consumer glued the per-crate error
//! types together stringly (`map_err(|e| e.to_string())` at every layer
//! boundary).  [`SuiteError`] replaces that glue: one enum with `From` impls
//! from every crate's error type, so `?` works end-to-end and structured
//! diagnostics — in particular the parser's line/column positions — survive
//! all the way to the consumer (the `ds-serve` daemon puts them in its 400
//! responses).

use ds_circuits::CircuitError;
use ds_descriptor::DescriptorError;
use ds_linalg::LinalgError;
use ds_lmi::LmiError;
use ds_netlist::ParseError;
use ds_passivity::PassivityError;
use ds_shh::ShhError;
use std::fmt;

/// Any failure the passivity-check pipeline can produce, from deck text to
/// verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum SuiteError {
    /// The deck text failed to parse; carries the exact line/column.
    Parse(ParseError),
    /// Netlist validation or MNA stamping failed.
    Circuit(CircuitError),
    /// A passivity test failed structurally.
    Passivity(PassivityError),
    /// A descriptor-system operation failed.
    Descriptor(DescriptorError),
    /// A dense linear-algebra kernel failed.
    Linalg(LinalgError),
    /// The request itself is malformed (empty deck, unknown method name, …).
    InvalidRequest(String),
    /// The request is well-formed but outside the supported envelope
    /// (e.g. the LMI baseline above its practical order limit).
    Unsupported(String),
    /// An I/O failure, with the path or operation baked into the message.
    Io(String),
    /// A harness-layer failure (result store, artifact validation) reported
    /// as text by `ds-harness`.
    Harness(String),
}

impl SuiteError {
    /// The `(line, column)` of a parse failure, when this error carries one —
    /// the daemon surfaces these as structured fields of its 400 responses.
    pub fn parse_location(&self) -> Option<(usize, usize)> {
        match self {
            SuiteError::Parse(e) => Some((e.line, e.col)),
            _ => None,
        }
    }

    /// Stable machine-readable category slug (used by the daemon's error
    /// responses and useful for metrics).
    pub fn kind(&self) -> &'static str {
        match self {
            SuiteError::Parse(_) => "parse",
            SuiteError::Circuit(_) => "circuit",
            SuiteError::Passivity(_) => "passivity",
            SuiteError::Descriptor(_) => "descriptor",
            SuiteError::Linalg(_) => "linalg",
            SuiteError::InvalidRequest(_) => "invalid_request",
            SuiteError::Unsupported(_) => "unsupported",
            SuiteError::Io(_) => "io",
            SuiteError::Harness(_) => "harness",
        }
    }
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Parse(e) => write!(f, "deck parse error: {e}"),
            SuiteError::Circuit(e) => write!(f, "circuit error: {e}"),
            SuiteError::Passivity(e) => write!(f, "passivity test error: {e}"),
            SuiteError::Descriptor(e) => write!(f, "descriptor error: {e}"),
            SuiteError::Linalg(e) => write!(f, "linear-algebra error: {e}"),
            SuiteError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            SuiteError::Unsupported(msg) => write!(f, "unsupported request: {msg}"),
            SuiteError::Io(msg) => write!(f, "I/O error: {msg}"),
            SuiteError::Harness(msg) => write!(f, "harness error: {msg}"),
        }
    }
}

impl std::error::Error for SuiteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuiteError::Parse(e) => Some(e),
            SuiteError::Circuit(e) => Some(e),
            SuiteError::Passivity(e) => Some(e),
            SuiteError::Descriptor(e) => Some(e),
            SuiteError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for SuiteError {
    fn from(e: ParseError) -> Self {
        SuiteError::Parse(e)
    }
}

impl From<CircuitError> for SuiteError {
    fn from(e: CircuitError) -> Self {
        SuiteError::Circuit(e)
    }
}

impl From<PassivityError> for SuiteError {
    fn from(e: PassivityError) -> Self {
        SuiteError::Passivity(e)
    }
}

impl From<DescriptorError> for SuiteError {
    fn from(e: DescriptorError) -> Self {
        SuiteError::Descriptor(e)
    }
}

impl From<LinalgError> for SuiteError {
    fn from(e: LinalgError) -> Self {
        SuiteError::Linalg(e)
    }
}

impl From<ShhError> for SuiteError {
    fn from(e: ShhError) -> Self {
        SuiteError::Passivity(PassivityError::from(e))
    }
}

impl From<LmiError> for SuiteError {
    fn from(e: LmiError) -> Self {
        SuiteError::Passivity(PassivityError::from(e))
    }
}

impl From<std::io::Error> for SuiteError {
    fn from(e: std::io::Error) -> Self {
        SuiteError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_keep_their_position() {
        let err = SuiteError::from(ParseError::new(4, 9, "bad token"));
        assert_eq!(err.parse_location(), Some((4, 9)));
        assert_eq!(err.kind(), "parse");
        assert!(err.to_string().contains("line 4, column 9"));
    }

    #[test]
    fn from_impls_cover_the_crate_stack() {
        let circuit: SuiteError = CircuitError::NoPorts.into();
        assert_eq!(circuit.kind(), "circuit");
        assert_eq!(circuit.parse_location(), None);
        let passivity: SuiteError = PassivityError::SingularPencil.into();
        assert_eq!(passivity.kind(), "passivity");
        let io: SuiteError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SuiteError>();
    }
}
