//! Demonstrates the `ds-harness` sweep engine: build a scenario matrix over
//! the multiport families, fan it across a worker pool, and print the
//! per-family summary plus a few JSONL artifact lines.
//!
//! Run with `cargo run --example parallel_sweep`.

use ds_passivity_suite::harness::artifacts;
use ds_passivity_suite::prelude::*;

fn main() {
    let scenarios = vec![
        Scenario::new(FamilyKind::RcLadder, 6),
        Scenario::new(FamilyKind::ImpulsiveLadder, 10),
        Scenario::new(FamilyKind::MultiportLadder, 3).with_ports(2),
        Scenario::new(FamilyKind::MultiportLadderImpulsive, 2).with_ports(2),
        Scenario::new(FamilyKind::CoupledMesh, 3),
        Scenario::new(FamilyKind::TlineChain, 4),
        Scenario::new(FamilyKind::PerturbedBoundary, 5).with_seed(1),
        Scenario::new(FamilyKind::PerturbedBoundary, 5)
            .with_margin(0.4)
            .with_seed(1),
        Scenario::new(FamilyKind::NonpassiveLadder, 8),
    ];
    let tasks = scenario_matrix(&scenarios, &[Method::Proposed, Method::Weierstrass]);
    println!(
        "sweeping {} tasks ({} scenarios × 2 methods) on 2 threads…\n",
        tasks.len(),
        scenarios.len()
    );

    let result = run_sweep(&SweepSpec::new(tasks, 2));
    print!("{}", SweepSummary::from_result(&result).render());

    println!("\nfirst three JSONL artifact lines:");
    for record in result.records.iter().take(3) {
        println!("{}", artifacts::jsonl_line(record));
    }

    let mismatches = result
        .records
        .iter()
        .filter(|r| r.agrees == Some(false))
        .count();
    println!("\nground-truth mismatches: {mismatches}");
}
