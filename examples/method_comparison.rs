//! Runs all three passivity tests (proposed SHH test, Weierstrass baseline,
//! extended-LMI baseline) on the same model and compares verdicts and runtime —
//! a miniature version of the paper's Table 1, driven entirely through the
//! unified [`PassivityCheck`] pipeline.
//!
//! Run with `cargo run --release --example method_comparison`.

use ds_passivity_suite::circuits::generators;
use ds_passivity_suite::prelude::*;

fn main() -> Result<(), SuiteError> {
    let model = generators::rlc_ladder_with_impulsive(20)?;
    println!("model: {} (order {})", model.name, model.system.order());
    println!("{:<14} {:>12} {:>10}", "method", "time (ms)", "passive");

    for method in [Method::Proposed, Method::Weierstrass, Method::Lmi] {
        let outcome = PassivityCheck::model(model.clone()).method(method).run()?;
        println!(
            "{:<14} {:>12.2} {:>10}",
            method.name(),
            outcome.elapsed.as_secs_f64() * 1e3,
            outcome.passive == Some(true)
        );
    }
    Ok(())
}
