//! Runs all three passivity tests (proposed SHH test, Weierstrass baseline,
//! extended-LMI baseline) on the same model and compares verdicts and runtime —
//! a miniature version of the paper's Table 1.
//!
//! Run with `cargo run --release --example method_comparison`.

use ds_circuits::generators;
use ds_lmi::positive_real_lmi::LmiOptions;
use ds_passivity::fast::{check_passivity, FastTestOptions};
use ds_passivity::lmi_test::{check_passivity_lmi, LmiTestOptions};
use ds_passivity::weierstrass_test::{check_passivity_weierstrass, WeierstrassTestOptions};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = generators::rlc_ladder_with_impulsive(20)?;
    println!("model: {} (order {})", model.name, model.system.order());
    println!("{:<14} {:>12} {:>10}", "method", "time (ms)", "passive");

    let start = Instant::now();
    let fast = check_passivity(&model.system, &FastTestOptions::default())?;
    print_row("proposed", start.elapsed(), fast.verdict.is_passive());

    let start = Instant::now();
    let weierstrass =
        check_passivity_weierstrass(&model.system, &WeierstrassTestOptions::default())?;
    print_row(
        "weierstrass",
        start.elapsed(),
        weierstrass.verdict.is_passive(),
    );

    let start = Instant::now();
    let lmi = check_passivity_lmi(
        &model.system,
        &LmiTestOptions {
            lmi: LmiOptions::default(),
        },
    )?;
    print_row("lmi", start.elapsed(), lmi.verdict.is_passive());
    Ok(())
}

fn print_row(name: &str, elapsed: std::time::Duration, passive: bool) {
    println!(
        "{:<14} {:>12.2} {:>10}",
        name,
        elapsed.as_secs_f64() * 1e3,
        passive
    );
}
