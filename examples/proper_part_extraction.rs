//! The paper's "sidetrack": the SHH reduction conveniently extracts the stable
//! proper part of a passive descriptor system.  This example compares the
//! proper part delivered by the proposed flow against the classical
//! Weierstrass additive decomposition on the imaginary axis.
//!
//! Run with `cargo run --example proper_part_extraction`.

use ds_circuits::generators;
use ds_descriptor::transfer;
use ds_descriptor::weierstrass::{decompose, WeierstrassOptions};
use ds_passivity::fast::{check_passivity, FastTestOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = generators::rlc_ladder_with_impulsive(14)?;
    let system = &model.system;

    // Proper part via the proposed structured flow.
    let report = check_passivity(system, &FastTestOptions::default())?;
    let shh_proper = report.proper_part.as_ref().expect("proper part").clone();

    // Proper part via the Weierstrass decomposition (non-orthogonal baseline).
    let weierstrass = decompose(system, &WeierstrassOptions::default())?;
    let weier_proper = weierstrass.proper.clone();

    println!(
        "orders: original {}, SHH proper part {}, Weierstrass proper part {}",
        system.order(),
        shh_proper.order(),
        weier_proper.order()
    );
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "omega", "Re G(jw)", "Re Gp_shh(jw)", "Re Gp_weier(jw)"
    );
    for &w in &[0.0, 0.1, 1.0, 10.0, 100.0] {
        let g = transfer::evaluate_jomega(system, w)?;
        let shh = transfer::evaluate_jomega(&shh_proper.to_descriptor(), w)?;
        let weier = transfer::evaluate_jomega(&weier_proper.to_descriptor(), w)?;
        println!(
            "{:>8} {:>16.8} {:>16.8} {:>16.8}",
            w,
            g.re[(0, 0)],
            shh.re[(0, 0)],
            weier.re[(0, 0)]
        );
    }
    println!("(the real parts agree: the sM1 term is purely imaginary on the jω axis)");
    Ok(())
}
