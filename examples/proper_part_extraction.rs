//! The paper's "sidetrack": the SHH reduction conveniently extracts the stable
//! proper part of a passive descriptor system.  This example compares the
//! proper part delivered by the proposed flow (via the unified
//! [`PassivityCheck`] pipeline, which keeps the full report for in-memory
//! sources) against the classical Weierstrass additive decomposition on the
//! imaginary axis.
//!
//! Run with `cargo run --example proper_part_extraction`.

use ds_passivity_suite::circuits::generators;
use ds_passivity_suite::descriptor::transfer;
use ds_passivity_suite::descriptor::weierstrass::{decompose, WeierstrassOptions};
use ds_passivity_suite::prelude::*;

fn main() -> Result<(), SuiteError> {
    let model = generators::rlc_ladder_with_impulsive(14)?;
    let system = model.system.clone();

    // Proper part via the proposed structured flow.
    let outcome = PassivityCheck::model(model).run()?;
    let report = outcome.report.as_ref().expect("full report");
    let shh_proper = report.proper_part.as_ref().expect("proper part").clone();

    // Proper part via the Weierstrass decomposition (non-orthogonal baseline).
    let weierstrass = decompose(&system, &WeierstrassOptions::default())?;
    let weier_proper = weierstrass.proper.clone();

    println!(
        "orders: original {}, SHH proper part {}, Weierstrass proper part {}",
        system.order(),
        shh_proper.order(),
        weier_proper.order()
    );
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "omega", "Re G(jw)", "Re Gp_shh(jw)", "Re Gp_weier(jw)"
    );
    for &w in &[0.0, 0.1, 1.0, 10.0, 100.0] {
        let g = transfer::evaluate_jomega(&system, w)?;
        let shh = transfer::evaluate_jomega(&shh_proper.to_descriptor(), w)?;
        let weier = transfer::evaluate_jomega(&weier_proper.to_descriptor(), w)?;
        println!(
            "{:>8} {:>16.8} {:>16.8} {:>16.8}",
            w,
            g.re[(0, 0)],
            shh.re[(0, 0)],
            weier.re[(0, 0)]
        );
    }
    println!("(the real parts agree: the sM1 term is purely imaginary on the jω axis)");
    Ok(())
}
