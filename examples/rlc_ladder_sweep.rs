//! Sweep the order of the Table-1 RLC-ladder workload and report the verdict
//! and wall-clock time of the proposed passivity test at each order — a small
//! reproduction of the paper's scaling experiment.
//!
//! Run with `cargo run --release --example rlc_ladder_sweep`.

use ds_circuits::generators;
use ds_passivity::fast::{check_passivity, FastTestOptions};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>10} {:>12} {:>18}",
        "order", "passive", "time (ms)", "impulsive states"
    );
    for order in [10usize, 20, 40, 60, 80] {
        let model = generators::rlc_ladder_with_impulsive(order)?;
        let start = Instant::now();
        let report = check_passivity(&model.system, &FastTestOptions::default())?;
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>8} {:>10} {:>12.2} {:>18}",
            order,
            report.verdict.is_passive(),
            elapsed,
            report.diagnostics.removed_impulse_states
        );
    }
    Ok(())
}
