//! Sweep the order of the Table-1 RLC-ladder workload and report the verdict
//! and wall-clock time of the proposed passivity test at each order — a small
//! reproduction of the paper's scaling experiment, one [`PassivityCheck`] per
//! order.
//!
//! Run with `cargo run --release --example rlc_ladder_sweep`.

use ds_passivity_suite::circuits::generators;
use ds_passivity_suite::prelude::*;

fn main() -> Result<(), SuiteError> {
    println!(
        "{:>8} {:>10} {:>12} {:>18}",
        "order", "passive", "time (ms)", "impulsive states"
    );
    for order in [10usize, 20, 40, 60, 80] {
        let model = generators::rlc_ladder_with_impulsive(order)?;
        let outcome = PassivityCheck::model(model).run()?;
        let report = outcome.report.as_ref().expect("full report");
        println!(
            "{:>8} {:>10} {:>12.2} {:>18}",
            order,
            outcome.passive == Some(true),
            outcome.elapsed.as_secs_f64() * 1e3,
            report.diagnostics.removed_impulse_states
        );
    }
    Ok(())
}
