//! Parse a SPICE deck, stamp it into a descriptor system, and run the
//! passivity tests on it — the whole "any circuit you can write down"
//! pipeline in one page.
//!
//! ```console
//! $ cargo run --example deck_check
//! ```

use ds_passivity_suite::circuits::mna;
use ds_passivity_suite::cross_check;
use ds_passivity_suite::netlist::parse_deck;

const DECK: &str = include_str!("decks/coupled_pair.cir");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deck = parse_deck(DECK)?;
    println!(
        "parsed deck: {} nodes ({}), {} elements, {} coupling(s), {} port(s)",
        deck.netlist.num_nodes,
        deck.node_names.join(", "),
        deck.netlist.elements.len(),
        deck.netlist.couplings.len(),
        deck.netlist.ports.len(),
    );
    println!("canonical content hash: {:016x}", deck.content_hash());

    let system = mna::stamp(&deck.netlist)?;
    println!(
        "stamped MNA descriptor system: order {}, {} port(s), rank E = {}",
        system.order(),
        system.num_inputs(),
        system.rank_e(1e-12)?
    );

    let (fast, weierstrass) = cross_check(&system)?;
    println!("proposed (SHH) verdict:    {}", fast.verdict);
    println!("weierstrass verdict:       {}", weierstrass.verdict);
    println!(
        "ground truth (by construction): {}",
        if deck.expected_passive() {
            "passive"
        } else {
            "not passive"
        }
    );
    Ok(())
}
