//! Parse a SPICE deck and check it through the unified pipeline — the whole
//! "any circuit you can write down" flow in one page, with verdicts from the
//! proposed test cross-checked against the Weierstrass baseline exactly the
//! way the `ds-serve` daemon would answer them.
//!
//! ```console
//! $ cargo run --example deck_check
//! ```

use ds_passivity_suite::netlist::parse_deck;
use ds_passivity_suite::prelude::*;

const DECK: &str = include_str!("decks/coupled_pair.cir");

fn main() -> Result<(), SuiteError> {
    let deck = parse_deck(DECK)?;
    println!(
        "parsed deck: {} nodes ({}), {} elements, {} coupling(s), {} port(s)",
        deck.netlist.num_nodes,
        deck.node_names.join(", "),
        deck.netlist.elements.len(),
        deck.netlist.couplings.len(),
        deck.netlist.ports.len(),
    );
    println!("canonical content hash: {:016x}", deck.content_hash());

    let proposed = PassivityCheck::deck("coupled_pair", deck.clone())
        .method(Method::Proposed)
        .run()?;
    println!(
        "stamped MNA descriptor system: order {}, {} port(s)",
        proposed.order, proposed.ports
    );

    let weierstrass = PassivityCheck::deck("coupled_pair", deck.clone())
        .method(Method::Weierstrass)
        .run()?;
    println!(
        "proposed (SHH) verdict:    passive = {:?}",
        proposed.passive
    );
    println!(
        "weierstrass verdict:       passive = {:?}",
        weierstrass.passive
    );
    println!(
        "ground truth (by construction): {}",
        if deck.expected_passive() {
            "passive"
        } else {
            "not passive"
        }
    );
    println!("served report body: {}", proposed.report_json());
    Ok(())
}
