//! A port fed through a series inductor produces an *impulsive* descriptor
//! model (`Z(s) ≈ R + sL` at high frequency).  This example shows how the
//! proposed test handles the impulsive part: the residue matrix `M₁` is
//! extracted and checked for positive semidefiniteness, and the stable proper
//! part is recovered as a by-product.  The check itself runs through the
//! unified [`PassivityCheck`] pipeline; the descriptor-level analysis around
//! it (`impulse::analyze`, transfer sampling) stays direct because it is
//! introspection, not a verdict.
//!
//! Run with `cargo run --example impulsive_port`.

use ds_passivity_suite::circuits::generators;
use ds_passivity_suite::descriptor::{impulse, transfer};
use ds_passivity_suite::prelude::*;

fn main() -> Result<(), SuiteError> {
    let model = generators::rlc_ladder_with_impulsive(12)?;
    let system = model.system.clone();

    let report_impulse = impulse::analyze(&system, 1e-10)?;
    println!(
        "model '{}': order {}, rank(E) = {}, impulse-free = {}",
        model.name,
        system.order(),
        report_impulse.rank_e,
        report_impulse.impulse_free
    );

    let outcome = PassivityCheck::model(model).run()?;
    let report = outcome.report.as_ref().expect("full report");
    println!("verdict: {}", report.verdict);

    let m1 = report.m1.as_ref().expect("flow reached M1 extraction");
    let sampled = transfer::sample_m1(&system, 1e5)?;
    println!(
        "M1 (chain-based) = {:.6}, M1 (high-frequency sampling) = {:.6}",
        m1[(0, 0)],
        sampled[(0, 0)]
    );

    let proper = report.proper_part.as_ref().expect("proper part extracted");
    println!(
        "stable proper part: order {} (the impulsive behaviour has been split off)",
        proper.order()
    );
    for &w in &[0.0, 1.0, 10.0] {
        let g = transfer::evaluate_jomega(&system, w)?;
        let gp = transfer::evaluate_jomega(&proper.to_descriptor(), w)?;
        println!(
            "  ω = {w:>5}: Re G(jω) = {:+.6}, Re G_p(jω) = {:+.6}",
            g.re[(0, 0)],
            gp.re[(0, 0)]
        );
    }
    Ok(())
}
