//! Quickstart: build a small RLC circuit model with MNA and check it through
//! the suite's unified pipeline API — the same [`PassivityCheck`] entry point
//! the `ds-serve` daemon and `ds-sweep` route every verdict through.
//!
//! Run with `cargo run --example quickstart`.

use ds_passivity_suite::circuits::netlist::{Netlist, Port};
use ds_passivity_suite::prelude::*;

fn main() -> Result<(), SuiteError> {
    // A two-node circuit: a series R-L branch connects the port node 1 to
    // node 2 and an R ∥ C tank loads node 2.
    let mut netlist = Netlist::new(2);
    netlist
        .resistor(1, 2, 2.0)
        .inductor(1, 2, 0.5)
        .capacitor(2, 0, 1.0)
        .resistor(2, 0, 10.0)
        .port(Port::to_ground(1));

    let outcome = PassivityCheck::netlist("quickstart", netlist).run()?;
    println!(
        "MNA descriptor model: order {}, {} port(s)",
        outcome.order, outcome.ports
    );

    let report = outcome
        .report
        .as_ref()
        .expect("in-memory checks keep the full report");
    println!("{report}");
    println!("verdict: {}", report.verdict);
    println!("passive: {}", outcome.passive == Some(true));
    if let Some(m1) = &report.m1 {
        println!("residue matrix M1 = {:.6}", m1[(0, 0)]);
    }
    if let Some(proper) = &report.proper_part {
        println!(
            "stable proper part: order {}, stable = {}",
            proper.order(),
            proper.is_stable(1e-10)?
        );
    }
    println!("serialized verdict report: {}", outcome.report_json());
    Ok(())
}
