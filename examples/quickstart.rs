//! Quickstart: build a small RLC circuit model with MNA, run the proposed
//! SHH-pencil passivity test and print the report.
//!
//! Run with `cargo run --example quickstart`.

use ds_circuits::mna;
use ds_circuits::netlist::{Netlist, Port};
use ds_passivity::fast::{check_passivity, FastTestOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-node circuit: a series R-L branch connects the port node 1 to
    // node 2 and an R ∥ C tank loads node 2.
    let mut netlist = Netlist::new(2);
    netlist
        .resistor(1, 2, 2.0)
        .inductor(1, 2, 0.5)
        .capacitor(2, 0, 1.0)
        .resistor(2, 0, 10.0)
        .port(Port::to_ground(1));
    let system = mna::stamp(&netlist)?;
    println!(
        "MNA descriptor model: order {}, rank(E) = {}",
        system.order(),
        system.rank_e(1e-12)?
    );

    let report = check_passivity(&system, &FastTestOptions::default())?;
    println!("{report}");
    println!("verdict: {}", report.verdict);
    if let Some(m1) = &report.m1 {
        println!("residue matrix M1 = {:.6}", m1[(0, 0)]);
    }
    if let Some(proper) = &report.proper_part {
        println!(
            "stable proper part: order {}, stable = {}",
            proper.order(),
            proper.is_stable(1e-10)?
        );
    }
    Ok(())
}
