//! Detection of non-passive models: a ladder with a negative series resistance
//! (violation at DC / finite frequency) and a macromodel with a negative port
//! inductance (violation at infinity, non-PSD `M₁`).
//!
//! Run with `cargo run --example nonpassive_detection`.

use ds_circuits::generators;
use ds_passivity::fast::{check_passivity, FastTestOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for model in [
        generators::nonpassive_ladder(10)?,
        generators::negative_m1_model(10)?,
        generators::rlc_ladder_with_impulsive(10)?, // passive control case
    ] {
        let report = check_passivity(&model.system, &FastTestOptions::default())?;
        println!(
            "{:<40} expected passive = {:<5} verdict = {}",
            model.name, model.expected_passive, report.verdict
        );
    }
    Ok(())
}
