//! Detection of non-passive models: a ladder with a negative series resistance
//! (violation at DC / finite frequency) and a macromodel with a negative port
//! inductance (violation at infinity, non-PSD `M₁`) — each checked through the
//! unified [`PassivityCheck`] pipeline, with the repair flag showing which
//! violations `ds-core::enforce` can perturb back to the passive side.
//!
//! Run with `cargo run --example nonpassive_detection`.

use ds_passivity_suite::circuits::generators;
use ds_passivity_suite::prelude::*;

fn main() -> Result<(), SuiteError> {
    for model in [
        generators::nonpassive_ladder(10)?,
        generators::negative_m1_model(10)?,
        generators::rlc_ladder_with_impulsive(10)?, // passive control case
    ] {
        let expected = model.expected_passive;
        let outcome = PassivityCheck::model(model).repair(true).run()?;
        let repair = outcome.repair.as_ref().expect("repair was requested");
        println!(
            "{:<40} expected passive = {:<5} passive = {:<5} reason = {:<24} repairable = {}",
            outcome.name,
            expected,
            outcome.passive == Some(true),
            if outcome.reason.is_empty() {
                "-"
            } else {
                &outcome.reason
            },
            repair.passive_after
        );
    }
    Ok(())
}
